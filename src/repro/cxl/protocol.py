"""CXL transaction-layer messages used by the simulator.

Only the fields that influence behaviour are modelled.  The enhanced
instruction format of Fig 9 (sumtag, SumCandidateCount, vectorsize, SPID
rewrite) lives in :mod:`repro.pifs.instructions`; this module defines the
standard opcodes and message containers shared by hosts, switches and
devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from itertools import count
from typing import Optional

_MESSAGE_IDS = count()


class MemOpcode(IntEnum):
    """CXL.mem memory opcodes (subset) plus the two PIFS extensions.

    ``MEM_RD``/``MEM_WR`` are the standard request opcodes forwarded
    unchanged by a conventional fabric switch.  ``PIFS_DATA_FETCH`` (0b1110)
    and ``PIFS_CONFIG`` (0b1111) are the enhanced opcodes introduced in
    Fig 9: a data-fetch carries a sumtag + vectorsize, a configuration
    message programs the Accumulate Configuration Register with the
    SumCandidateCount and the reserved result address.
    """

    MEM_RD = 0b0000
    MEM_WR = 0b0001
    MEM_RD_DATA = 0b0010
    MEM_INV = 0b0011
    PIFS_DATA_FETCH = 0b1110
    PIFS_CONFIG = 0b1111


def is_pifs_opcode(opcode: MemOpcode) -> bool:
    """Return True when ``opcode`` must be routed to the process core."""
    return opcode in (MemOpcode.PIFS_DATA_FETCH, MemOpcode.PIFS_CONFIG)


@dataclass
class CXLMemM2S:
    """A CXL.mem master-to-subordinate request."""

    opcode: MemOpcode
    address: int
    spid: int  # source port id (which agent issued the request)
    dpid: int = 0  # destination port id (filled in by switch routing)
    tag: int = 0
    sumtag: int = 0
    vector_size: int = 0  # number of 16 B chunks forming a row access
    sum_candidate_count: int = 0
    weight: float = 1.0
    data_bytes: int = 64
    issue_ns: float = 0.0
    message_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))

    def is_pifs(self) -> bool:
        return is_pifs_opcode(self.opcode)


@dataclass
class CXLMemS2M:
    """A CXL.mem subordinate-to-master response (data + valid signal)."""

    request_id: int
    address: int
    data_valid: bool
    finish_ns: float
    data_bytes: int = 64


@dataclass
class CXLCacheD2H:
    """A CXL.cache device-to-host message.

    PIFS-Rec uses D2H writes to place the accumulated result at the address
    the host reserved and snoops (§IV-A2, step 4).
    """

    address: int
    payload_bytes: int
    finish_ns: float
    sumtag: int = 0
    source_switch: Optional[int] = None


__all__ = [
    "MemOpcode",
    "is_pifs_opcode",
    "CXLMemM2S",
    "CXLMemS2M",
    "CXLCacheD2H",
]
