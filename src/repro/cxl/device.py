"""CXL Type 3 memory expander."""

from __future__ import annotations

from repro.config import CACHE_LINE_BYTES, CXLConfig, DRAMConfig
from repro.cxl.bias_table import BiasTable
from repro.cxl.link import CXLLink
from repro.dram.device import DRAMDevice, DRAMStats


class CXLType3Device:
    """A Type 3 (memory-only) CXL device: DDR media behind a FlexBus link.

    The access path is: downstream-port link transfer of the request, the
    device-internal CXL controller overhead (the fixed "CXL access penalty
    over DRAM" of Table II is split between the two link directions and the
    controller), the DRAM media access, then the response transfer back
    through the link.
    """

    def __init__(
        self,
        device_id: int,
        dram_config: DRAMConfig,
        cxl_config: CXLConfig,
        name: str | None = None,
    ) -> None:
        self._device_id = device_id
        self._name = name or f"cxl{device_id}"
        self._cxl_config = cxl_config
        self._dram = DRAMDevice(dram_config, name=f"{self._name}.dram")
        self._link = CXLLink(
            bandwidth_gbps=cxl_config.downstream_port_bandwidth_gbps,
            propagation_ns=cxl_config.retimer_ns,
            name=f"{self._name}.dsp",
        )
        self._bias = BiasTable()
        # The fixed penalty accounts for the device-side CXL controller and
        # the extra protocol crossings that remain after the explicit link
        # serialization below.
        self._controller_penalty_ns = cxl_config.access_penalty_ns / 2.0
        self._reads = 0
        self._writes = 0

    @property
    def device_id(self) -> int:
        return self._device_id

    @property
    def name(self) -> str:
        return self._name

    @property
    def dram(self) -> DRAMDevice:
        return self._dram

    @property
    def link(self) -> CXLLink:
        return self._link

    @property
    def bias_table(self) -> BiasTable:
        return self._bias

    @property
    def capacity_bytes(self) -> int:
        return self._dram.capacity_bytes

    @property
    def reads(self) -> int:
        return self._reads

    @property
    def writes(self) -> int:
        return self._writes

    def access(
        self,
        address: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
        from_switch: bool = True,
    ) -> float:
        """Access the device; return the time the response is available.

        ``from_switch`` selects whether the requester sits at the switch's
        downstream port (PIFS process core, one link crossing) or is the host
        (request and response both cross the downstream link; the upstream
        link is accounted for by the caller).
        """
        if is_write:
            self._writes += 1
        else:
            self._reads += 1
        bias_penalty = 0.0 if from_switch is False else self._bias.device_access_penalty_ns(address)
        request_arrival = self._link.transfer(CACHE_LINE_BYTES, arrival_ns)
        media_start = request_arrival + self._controller_penalty_ns + bias_penalty
        media_done = self._dram.access(
            address=address,
            arrival_ns=media_start,
            is_write=is_write,
            bytes_requested=bytes_requested,
        )
        response_done = self._link.transfer(bytes_requested, media_done)
        return response_done

    def dram_stats(self) -> DRAMStats:
        return self._dram.stats()

    def reset(self) -> None:
        self._dram.reset()
        self._link.reset()
        self._reads = 0
        self._writes = 0


__all__ = ["CXLType3Device"]
