"""CXL Type 3 memory expander.

The scalar access path lives in :meth:`CXLType3Device.access`; the batched
engine uses :class:`CXLDeviceKernel`, which flattens the device's link,
controller-penalty, bias-table and DRAM state into closures that replay the
same arithmetic without the per-access object walk.
"""

from __future__ import annotations

from repro.config import CACHE_LINE_BYTES, CXLConfig, DRAMConfig
from repro.cxl.bias_table import BiasMode, BiasTable
from repro.cxl.link import CXLLink
from repro.cxl.protocol import MemOpcode
from repro.dram.device import DRAMDevice, DRAMKernel, DRAMStats


class CXLType3Device:
    """A Type 3 (memory-only) CXL device: DDR media behind a FlexBus link.

    The access path is: downstream-port link transfer of the request, the
    device-internal CXL controller overhead (the fixed "CXL access penalty
    over DRAM" of Table II is split between the two link directions and the
    controller), the DRAM media access, then the response transfer back
    through the link.
    """

    def __init__(
        self,
        device_id: int,
        dram_config: DRAMConfig,
        cxl_config: CXLConfig,
        name: str | None = None,
    ) -> None:
        self._device_id = device_id
        self._name = name or f"cxl{device_id}"
        self._cxl_config = cxl_config
        self._dram = DRAMDevice(dram_config, name=f"{self._name}.dram")
        self._link = CXLLink(
            bandwidth_gbps=cxl_config.downstream_port_bandwidth_gbps,
            propagation_ns=cxl_config.retimer_ns,
            name=f"{self._name}.dsp",
        )
        self._bias = BiasTable()
        # The fixed penalty accounts for the device-side CXL controller and
        # the extra protocol crossings that remain after the explicit link
        # serialization below.
        self._controller_penalty_ns = cxl_config.access_penalty_ns / 2.0
        #: Extra per-read controller latency of a degraded device (fault
        #: injection: media retraining, a DIMM running in fail-slow mode).
        self._read_penalty_ns = 0.0
        self._reads = 0
        self._writes = 0

    @property
    def device_id(self) -> int:
        return self._device_id

    @property
    def name(self) -> str:
        return self._name

    @property
    def dram(self) -> DRAMDevice:
        return self._dram

    @property
    def link(self) -> CXLLink:
        return self._link

    @property
    def bias_table(self) -> BiasTable:
        return self._bias

    @property
    def capacity_bytes(self) -> int:
        return self._dram.capacity_bytes

    @property
    def read_penalty_ns(self) -> float:
        return self._read_penalty_ns

    def degrade_reads(self, extra_ns: float) -> None:
        """Mark the device read-degraded: every read pays ``extra_ns`` more.

        Applied at session setup (before the vector kernels snapshot the
        controller parameters) so both engines see the identical slowdown.
        Writes and flows that bypass the device controller (RecNMP's
        in-expander NMP command path) are unaffected.
        """
        if extra_ns < 0:
            raise ValueError("extra_ns must be non-negative")
        self._read_penalty_ns = self._read_penalty_ns + extra_ns

    @property
    def reads(self) -> int:
        return self._reads

    @property
    def writes(self) -> int:
        return self._writes

    def access(
        self,
        address: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
        from_switch: bool = True,
    ) -> float:
        """Access the device; return the time the response is available.

        ``from_switch`` selects whether the requester sits at the switch's
        downstream port (PIFS process core, one link crossing) or is the host
        (request and response both cross the downstream link; the upstream
        link is accounted for by the caller).
        """
        if is_write:
            self._writes += 1
        else:
            self._reads += 1
        bias_penalty = 0.0 if from_switch is False else self._bias.device_access_penalty_ns(address)
        penalty_ns = self._controller_penalty_ns
        if not is_write:
            # Grouped as (controller + read_penalty) to match the batch
            # kernel, which pre-folds the two at build time.
            penalty_ns = penalty_ns + self._read_penalty_ns
        request_arrival = self._link.transfer(
            CACHE_LINE_BYTES,
            arrival_ns,
            op=MemOpcode.MEM_WR if is_write else MemOpcode.MEM_RD,
        )
        media_start = request_arrival + penalty_ns + bias_penalty
        media_done = self._dram.access(
            address=address,
            arrival_ns=media_start,
            is_write=is_write,
            bytes_requested=bytes_requested,
        )
        response_done = self._link.transfer(
            bytes_requested, media_done, op=MemOpcode.MEM_RD_DATA
        )
        return response_done

    def batch_kernel(self, bytes_requested: int) -> "CXLDeviceKernel":
        """A flattened read-timing kernel over this device (batch engine)."""
        return CXLDeviceKernel(self, bytes_requested)

    def dram_stats(self) -> DRAMStats:
        return self._dram.stats()

    def reset(self) -> None:
        self._dram.reset()
        self._link.reset()
        self._reads = 0
        self._writes = 0


class CXLDeviceKernel:
    """Flattened read path of one :class:`CXLType3Device`.

    Two access closures are exposed, mirroring the two ``from_switch``
    flavours of the scalar path:

    * ``access_host(channel, flat_bank, row, arrival)`` — requester is the
      host behind the fabric switch (no bias-table penalty);
    * ``access_switch(channel, flat_bank, row, address, arrival)`` — the
      requester sits in the switch (PIFS process core), so the bias table
      is consulted for ``address``.

    DRAM coordinates come from the device mapping's ``decode_flat_batch``.
    All arithmetic matches :meth:`CXLType3Device.access` exactly.
    """

    def __init__(self, device: CXLType3Device, bytes_requested: int) -> None:
        self._device = device
        self._bytes_requested = bytes_requested
        self.dram = device.dram.batch_kernel(bytes_requested)
        (
            self.access_host,
            self.access_switch,
            self.link_transfer,
            self.link_transfer_seq,
            self._snapshot,
        ) = self._build()

    @property
    def mapping(self):
        return self._device.dram.controller.mapping

    def _build(self):
        device = self._device
        link = device.link
        bandwidth = link.bandwidth_gbps
        propagation = link.propagation_ns
        # Per-constant divisions match the scalar per-transfer divisions.
        request_serialization = CACHE_LINE_BYTES / bandwidth
        response_serialization = self._bytes_requested / bandwidth
        access_bytes = CACHE_LINE_BYTES + self._bytes_requested
        # The DRAM read block below is inlined from DRAMKernel.access (kept
        # in sync with it; the engine equivalence suite guards both): one
        # closure call per device access instead of three.
        dram = self.dram
        bank_open = dram.bank_open
        bank_ready = dram.bank_ready
        bank_hits = dram.bank_hits
        bank_misses = dram.bank_misses
        bank_conflicts = dram.bank_conflicts
        bus_free = dram.bus_free
        dram_busy_ns = dram.busy_ns
        dram_accesses = dram.accesses
        dram_box = dram.controller_box
        hit_ns = dram.hit_ns
        miss_ns = dram.miss_ns
        conflict_ns = dram.conflict_ns
        recovery_ns = dram.recovery_ns
        burst_time = dram.burst_time
        dram_overhead = dram.overhead_ns
        # The kernel paths are read-only, so the read-degradation penalty is
        # folded into the constant (same grouping as the scalar read path).
        penalty = device._controller_penalty_ns + device._read_penalty_ns
        bias = device.bias_table
        granularity = bias.granularity_bytes
        default_pen = 0.0 if bias._default is BiasMode.DEVICE else bias.HOST_BIAS_PENALTY_NS
        region_pen = {
            region: (0.0 if mode is BiasMode.DEVICE else bias.HOST_BIAS_PENALTY_NS)
            for region, mode in bias._entries.items()
        }
        uniform_bias = not region_pen
        busy_until = link.busy_until_ns
        queued = 0.0
        nbytes = 0
        transfers = 0
        reads = 0

        def access_host(channel: int, flat_bank: int, row: int, arrival_ns: float) -> float:
            nonlocal busy_until, queued, nbytes, transfers, reads
            reads += 1
            # Request crosses the downstream link ...
            begin = arrival_ns if arrival_ns > busy_until else busy_until
            queued += begin - arrival_ns
            busy_until = begin + request_serialization
            # ... then the device controller; the scalar path adds the (zero)
            # host-side bias penalty after it, and x + 0.0 == x for the
            # non-negative timestamps here.
            media_start = busy_until + propagation + penalty + 0.0
            # --- inlined DRAMKernel.access ---
            ready_at = bank_ready[flat_bank]
            start = media_start if media_start > ready_at else ready_at
            open_row = bank_open[flat_bank]
            if open_row == row:
                latency = hit_ns
                bank_hits[flat_bank] += 1
            elif open_row < 0:
                latency = miss_ns
                bank_misses[flat_bank] += 1
            else:
                latency = conflict_ns
                bank_conflicts[flat_bank] += 1
            data_ready = start + latency
            bank_open[flat_bank] = row
            bank_ready[flat_bank] = data_ready + recovery_ns
            bus = bus_free[channel]
            start_burst = data_ready if data_ready > bus else bus
            media_done = start_burst + burst_time
            bus_free[channel] = media_done
            dram_busy_ns[channel] += burst_time
            dram_accesses[channel] += 1
            media_done += dram_overhead
            dram_box[0] += 1
            dram_box[1] += media_done - media_start
            if media_done > dram_box[2]:
                dram_box[2] = media_done
            # --- end inlined block ---
            # Response crosses the link back to the switch.
            begin = media_done if media_done > busy_until else busy_until
            queued += begin - media_done
            busy_until = begin + response_serialization
            nbytes += access_bytes
            transfers += 2
            return busy_until + propagation

        def access_switch(
            channel: int, flat_bank: int, row: int, address: int, arrival_ns: float
        ) -> float:
            nonlocal busy_until, queued, nbytes, transfers, reads
            reads += 1
            if uniform_bias:
                bias_penalty = default_pen
            else:
                bias_penalty = region_pen.get(address // granularity, default_pen)
            begin = arrival_ns if arrival_ns > busy_until else busy_until
            queued += begin - arrival_ns
            busy_until = begin + request_serialization
            media_start = busy_until + propagation + penalty + bias_penalty
            # --- inlined DRAMKernel.access (see access_host) ---
            ready_at = bank_ready[flat_bank]
            start = media_start if media_start > ready_at else ready_at
            open_row = bank_open[flat_bank]
            if open_row == row:
                latency = hit_ns
                bank_hits[flat_bank] += 1
            elif open_row < 0:
                latency = miss_ns
                bank_misses[flat_bank] += 1
            else:
                latency = conflict_ns
                bank_conflicts[flat_bank] += 1
            data_ready = start + latency
            bank_open[flat_bank] = row
            bank_ready[flat_bank] = data_ready + recovery_ns
            bus = bus_free[channel]
            start_burst = data_ready if data_ready > bus else bus
            media_done = start_burst + burst_time
            bus_free[channel] = media_done
            dram_busy_ns[channel] += burst_time
            dram_accesses[channel] += 1
            media_done += dram_overhead
            dram_box[0] += 1
            dram_box[1] += media_done - media_start
            if media_done > dram_box[2]:
                dram_box[2] = media_done
            # --- end inlined block ---
            begin = media_done if media_done > busy_until else busy_until
            queued += begin - media_done
            busy_until = begin + response_serialization
            nbytes += access_bytes
            transfers += 2
            return busy_until + propagation

        def link_transfer(bytes_count: int, start_ns: float) -> float:
            """Raw link transfer for flows that bypass the device controller
            (RecNMP's in-expander NMP path uses link and media separately)."""
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            begin = start_ns if start_ns > busy_until else busy_until
            queued += begin - start_ns
            busy_until = begin + serialization
            nbytes += bytes_count
            transfers += 1
            return busy_until + propagation

        def link_transfer_seq(bytes_count: int, starts, offset_ns: float = 0.0) -> list:
            """One raw link transfer per ``starts[i] + offset_ns``, in order.

            Batch counterpart of calling ``link_transfer`` once per start;
            same arithmetic, so arrivals and link state are bit-identical
            (RecNMP's per-device NMP command bursts use it, with
            ``offset_ns`` carrying the switch forwarding latency)."""
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            arrivals = []
            append = arrivals.append
            busy = busy_until
            wait = queued
            for arrival in starts:
                start_ns = arrival + offset_ns
                begin = start_ns if start_ns > busy else busy
                wait += begin - start_ns
                busy = begin + serialization
                append(busy + propagation)
            busy_until = busy
            queued = wait
            nbytes += bytes_count * len(starts)
            transfers += len(starts)
            return arrivals

        def snapshot():
            return busy_until, queued, nbytes, transfers, reads

        return access_host, access_switch, link_transfer, link_transfer_seq, snapshot

    def sync(self) -> None:
        """Write counters, link and DRAM state back into the device."""
        busy_until, queued, nbytes, transfers, reads = self._snapshot()
        device = self._device
        device._reads += reads
        link = device.link
        link._busy_until_ns = busy_until
        link._queued_ns += queued
        link._bytes_transferred += nbytes
        link._transfers += transfers
        self.dram.sync()
        (
            self.access_host,
            self.access_switch,
            self.link_transfer,
            self.link_transfer_seq,
            self._snapshot,
        ) = self._build()


__all__ = ["CXLType3Device", "CXLDeviceKernel"]
