"""Multi-switch fabric topologies (§IV-C, Fig 11).

A :class:`FabricTopology` holds a set of fabric switches and the inter-switch
connectivity.  The paper's scale-up experiments assume fully connected
switches with one host and one local CXL memory per switch, and an extra
100 ns of latency per inter-switch transfer; the topology class captures the
connectivity and hop latency so the PIFS forwarding layer can compute remote
accumulation costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.config import CXLConfig


class FabricTopology:
    """Connectivity between fabric switches."""

    def __init__(self, num_switches: int, cxl_config: CXLConfig, fully_connected: bool = True) -> None:
        if num_switches < 1:
            raise ValueError("at least one switch is required")
        self._num_switches = num_switches
        self._config = cxl_config
        #: Extra latency added to every inter-switch hop (fault injection:
        #: congested or retrained inter-switch links).  0.0 in a healthy
        #: fabric, where ``hop_ns + 0.0 == hop_ns`` exactly.
        self._extra_hop_ns = 0.0
        self._edges: Dict[int, set] = {i: set() for i in range(num_switches)}
        #: (src, dst) -> hop latency, the route table built lazily from the
        #: BFS below and reused for every request of the session; mutating
        #: the connectivity invalidates it.
        self._hop_latency_cache: Dict[Tuple[int, int], float] = {}
        if fully_connected:
            for a in range(num_switches):
                for b in range(num_switches):
                    if a != b:
                        self._edges[a].add(b)

    @property
    def num_switches(self) -> int:
        return self._num_switches

    @property
    def extra_hop_ns(self) -> float:
        return self._extra_hop_ns

    def degrade_hops(self, extra_ns: float) -> None:
        """Add ``extra_ns`` of latency to every inter-switch hop.

        Composable (repeated calls accumulate) and applied through the
        route table, so the scalar request flow and the vector kernels —
        both of which read :meth:`hop_latency_ns` at request time — observe
        the identical degraded fabric.
        """
        if extra_ns < 0:
            raise ValueError("extra_ns must be non-negative")
        self._extra_hop_ns += extra_ns
        self._hop_latency_cache.clear()

    def add_link(self, a: int, b: int) -> None:
        """Add a bidirectional inter-switch link."""
        self._validate(a)
        self._validate(b)
        if a == b:
            raise ValueError("cannot link a switch to itself")
        self._edges[a].add(b)
        self._edges[b].add(a)
        self._hop_latency_cache.clear()

    def neighbors(self, switch_id: int) -> List[int]:
        self._validate(switch_id)
        return sorted(self._edges[switch_id])

    def are_connected(self, a: int, b: int) -> bool:
        self._validate(a)
        self._validate(b)
        return b in self._edges[a]

    def hop_count(self, src: int, dst: int) -> int:
        """Minimum number of inter-switch hops between ``src`` and ``dst``."""
        self._validate(src)
        self._validate(dst)
        if src == dst:
            return 0
        # Breadth-first search; fabrics are small (<= 32 switches).
        frontier = [src]
        visited = {src}
        hops = 0
        while frontier:
            hops += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self._edges[node]:
                    if neighbor == dst:
                        return hops
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        raise ValueError(f"switches {src} and {dst} are not connected")

    def hop_latency_ns(self, src: int, dst: int) -> float:
        """Latency contributed by inter-switch hops between two switches.

        The underlying BFS runs once per (src, dst) pair; the forwarding
        layer reads this per remote accumulation, so the answer comes from
        the route table after the first lookup.
        """
        key = (src, dst)
        cached = self._hop_latency_cache.get(key)
        if cached is None:
            per_hop = self._config.inter_switch_hop_ns + self._extra_hop_ns
            cached = self.hop_count(src, dst) * per_hop
            self._hop_latency_cache[key] = cached
        return cached

    def _validate(self, switch_id: int) -> None:
        if not 0 <= switch_id < self._num_switches:
            raise ValueError(f"switch id {switch_id} out of range")


__all__ = ["FabricTopology"]
