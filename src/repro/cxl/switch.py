"""Base CXL fabric switch (the non-PIFS switch used by Pond/TPP baselines).

The switch owns an upstream port per host and a downstream port per Type 3
device.  A standard CXL.mem read issued by a host traverses:

    host --[upstream link]--> switch --(forwarding)--> device access
         <--[upstream link]-- switch <-- device response

Device access latency, including the downstream link, is modelled inside
:class:`repro.cxl.device.CXLType3Device`; the switch adds its forwarding
latency and the upstream-link serialization, which is where congestion under
multi-host traffic appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CACHE_LINE_BYTES, CXLConfig
from repro.cxl.device import CXLType3Device
from repro.cxl.fabric_manager import FabricManager
from repro.cxl.link import CXLLink
from repro.cxl.protocol import CXLMemM2S, CXLMemS2M, MemOpcode


@dataclass
class SwitchPort:
    """One physical switch port and its link."""

    port_id: int
    direction: str  # "upstream" | "downstream"
    link: CXLLink


class FabricSwitch:
    """A conventional CXL 2.0 fabric switch (no processing capability)."""

    #: Latency for the switch to decode and forward a request (ns).
    FORWARD_LATENCY_NS = 25.0

    def __init__(self, config: CXLConfig, switch_id: int = 0, name: str | None = None) -> None:
        self._config = config
        self._switch_id = switch_id
        self._name = name or f"switch{switch_id}"
        self._fm = FabricManager()
        self._upstream_ports: Dict[int, SwitchPort] = {}
        self._devices: Dict[int, CXLType3Device] = {}
        self._device_ports: Dict[int, int] = {}
        self._next_port_id = 0
        self._forwarded_requests = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    @property
    def switch_id(self) -> int:
        return self._switch_id

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> CXLConfig:
        return self._config

    @property
    def fabric_manager(self) -> FabricManager:
        return self._fm

    @property
    def forwarded_requests(self) -> int:
        return self._forwarded_requests

    def _allocate_port(self) -> int:
        port = self._next_port_id
        self._next_port_id += 1
        return port

    def attach_host(self, host_name: str) -> SwitchPort:
        """Attach a host to a new upstream port; returns the port."""
        port_id = self._allocate_port()
        link = CXLLink(
            bandwidth_gbps=self._config.upstream_port_bandwidth_gbps,
            propagation_ns=self._config.retimer_ns,
            name=f"{self._name}.usp{port_id}",
        )
        port = SwitchPort(port_id=port_id, direction="upstream", link=link)
        self._upstream_ports[port_id] = port
        self._fm.bind(port_id, host_name, "host")
        return port

    def attach_device(self, device: CXLType3Device) -> SwitchPort:
        """Attach a Type 3 device to a new downstream port; returns the port."""
        port_id = self._allocate_port()
        port = SwitchPort(port_id=port_id, direction="downstream", link=device.link)
        self._devices[device.device_id] = device
        self._device_ports[device.device_id] = port_id
        self._fm.bind(port_id, device.name, "type3")
        return port

    def devices(self) -> List[CXLType3Device]:
        return [self._devices[k] for k in sorted(self._devices)]

    def device(self, device_id: int) -> CXLType3Device:
        return self._devices[device_id]

    def upstream_port(self, port_id: int) -> Optional[SwitchPort]:
        return self._upstream_ports.get(port_id)

    def upstream_ports(self) -> List[SwitchPort]:
        return [self._upstream_ports[k] for k in sorted(self._upstream_ports)]

    # ------------------------------------------------------------------
    # Standard CXL.mem forwarding (host-centric path)
    # ------------------------------------------------------------------
    def host_read(
        self,
        host_port: SwitchPort,
        device_id: int,
        address: int,
        issue_ns: float,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Service a standard host read through the switch.

        Returns the time the data arrives back at the host.
        """
        request = CXLMemM2S(
            opcode=MemOpcode.MEM_RD,
            address=address,
            spid=host_port.port_id,
            dpid=self._device_ports[device_id],
            issue_ns=issue_ns,
            data_bytes=bytes_requested,
        )
        response = self.forward(request, host_port=host_port, bytes_requested=bytes_requested)
        return response.finish_ns

    def forward(
        self,
        request: CXLMemM2S,
        host_port: SwitchPort,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> CXLMemS2M:
        """Forward a standard request from ``host_port`` to its target device."""
        device = self._device_for_port(request.dpid)
        self._forwarded_requests += 1
        # Request crosses the upstream link (a command flit).
        at_switch = host_port.link.transfer(self._config.flit_bytes, request.issue_ns)
        at_switch += self.FORWARD_LATENCY_NS
        # Device access includes the downstream link in both directions.
        data_at_switch = device.access(
            address=request.address,
            arrival_ns=at_switch,
            is_write=request.opcode == MemOpcode.MEM_WR,
            bytes_requested=bytes_requested,
            from_switch=False,
        )
        # Response data crosses the upstream link back to the host.
        finish = host_port.link.transfer(bytes_requested, data_at_switch)
        return CXLMemS2M(
            request_id=request.message_id,
            address=request.address,
            data_valid=True,
            finish_ns=finish,
        )

    def _device_for_port(self, port_id: int) -> CXLType3Device:
        for device_id, bound_port in self._device_ports.items():
            if bound_port == port_id:
                return self._devices[device_id]
        raise KeyError(f"no device bound to port {port_id}")

    def device_port_id(self, device_id: int) -> int:
        return self._device_ports[device_id]

    def reset(self) -> None:
        for device in self._devices.values():
            device.reset()
        for port in self._upstream_ports.values():
            port.link.reset()
        self._forwarded_requests = 0


__all__ = ["FabricSwitch", "SwitchPort"]
