"""Base CXL fabric switch (the non-PIFS switch used by Pond/TPP baselines).

The switch owns an upstream port per host and a downstream port per Type 3
device.  A standard CXL.mem read issued by a host traverses:

    host --[upstream link]--> switch --(forwarding)--> device access
         <--[upstream link]-- switch <-- device response

Device access latency, including the downstream link, is modelled inside
:class:`repro.cxl.device.CXLType3Device`; the switch adds its forwarding
latency and the upstream-link serialization, which is where congestion under
multi-host traffic appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CACHE_LINE_BYTES, CXLConfig
from repro.cxl.device import CXLType3Device
from repro.cxl.fabric_manager import FabricManager
from repro.cxl.link import CXLLink
from repro.cxl.protocol import CXLMemM2S, CXLMemS2M, MemOpcode


@dataclass
class SwitchPort:
    """One physical switch port and its link."""

    port_id: int
    direction: str  # "upstream" | "downstream"
    link: CXLLink


class FabricSwitch:
    """A conventional CXL 2.0 fabric switch (no processing capability)."""

    #: Latency for the switch to decode and forward a request (ns).
    FORWARD_LATENCY_NS = 25.0

    def __init__(self, config: CXLConfig, switch_id: int = 0, name: str | None = None) -> None:
        self._config = config
        self._switch_id = switch_id
        self._name = name or f"switch{switch_id}"
        self._fm = FabricManager()
        self._upstream_ports: Dict[int, SwitchPort] = {}
        self._devices: Dict[int, CXLType3Device] = {}
        self._device_ports: Dict[int, int] = {}
        self._next_port_id = 0
        self._forwarded_requests = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    @property
    def switch_id(self) -> int:
        return self._switch_id

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> CXLConfig:
        return self._config

    @property
    def fabric_manager(self) -> FabricManager:
        return self._fm

    @property
    def forwarded_requests(self) -> int:
        return self._forwarded_requests

    def _allocate_port(self) -> int:
        port = self._next_port_id
        self._next_port_id += 1
        return port

    def attach_host(self, host_name: str) -> SwitchPort:
        """Attach a host to a new upstream port; returns the port."""
        port_id = self._allocate_port()
        link = CXLLink(
            bandwidth_gbps=self._config.upstream_port_bandwidth_gbps,
            propagation_ns=self._config.retimer_ns,
            name=f"{self._name}.usp{port_id}",
        )
        port = SwitchPort(port_id=port_id, direction="upstream", link=link)
        self._upstream_ports[port_id] = port
        self._fm.bind(port_id, host_name, "host")
        return port

    def attach_device(self, device: CXLType3Device) -> SwitchPort:
        """Attach a Type 3 device to a new downstream port; returns the port."""
        port_id = self._allocate_port()
        port = SwitchPort(port_id=port_id, direction="downstream", link=device.link)
        self._devices[device.device_id] = device
        self._device_ports[device.device_id] = port_id
        self._fm.bind(port_id, device.name, "type3")
        return port

    def devices(self) -> List[CXLType3Device]:
        return [self._devices[k] for k in sorted(self._devices)]

    def device(self, device_id: int) -> CXLType3Device:
        return self._devices[device_id]

    def upstream_port(self, port_id: int) -> Optional[SwitchPort]:
        return self._upstream_ports.get(port_id)

    def upstream_ports(self) -> List[SwitchPort]:
        return [self._upstream_ports[k] for k in sorted(self._upstream_ports)]

    # ------------------------------------------------------------------
    # Standard CXL.mem forwarding (host-centric path)
    # ------------------------------------------------------------------
    def host_read(
        self,
        host_port: SwitchPort,
        device_id: int,
        address: int,
        issue_ns: float,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Service a standard host read through the switch.

        Returns the time the data arrives back at the host.
        """
        request = CXLMemM2S(
            opcode=MemOpcode.MEM_RD,
            address=address,
            spid=host_port.port_id,
            dpid=self._device_ports[device_id],
            issue_ns=issue_ns,
            data_bytes=bytes_requested,
        )
        response = self.forward(request, host_port=host_port, bytes_requested=bytes_requested)
        return response.finish_ns

    def forward(
        self,
        request: CXLMemM2S,
        host_port: SwitchPort,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> CXLMemS2M:
        """Forward a standard request from ``host_port`` to its target device."""
        device = self._device_for_port(request.dpid)
        self._forwarded_requests += 1
        # Request crosses the upstream link (a command flit).
        at_switch = host_port.link.transfer(
            self._config.flit_bytes, request.issue_ns, op=request.opcode
        )
        at_switch += self.FORWARD_LATENCY_NS
        # Device access includes the downstream link in both directions.
        data_at_switch = device.access(
            address=request.address,
            arrival_ns=at_switch,
            is_write=request.opcode == MemOpcode.MEM_WR,
            bytes_requested=bytes_requested,
            from_switch=False,
        )
        # Response data crosses the upstream link back to the host.
        finish = host_port.link.transfer(
            bytes_requested, data_at_switch, op=MemOpcode.MEM_RD_DATA
        )
        return CXLMemS2M(
            request_id=request.message_id,
            address=request.address,
            data_valid=True,
            finish_ns=finish,
        )

    def _device_for_port(self, port_id: int) -> CXLType3Device:
        for device_id, bound_port in self._device_ports.items():
            if bound_port == port_id:
                return self._devices[device_id]
        raise KeyError(f"no device bound to port {port_id}")

    def device_port_id(self, device_id: int) -> int:
        return self._device_ports[device_id]

    def batch_kernel(self, row_bytes: int) -> "FabricSwitchKernel":
        """A flattened forwarding kernel over this switch (batch engine)."""
        return FabricSwitchKernel(self, row_bytes)

    def reset(self) -> None:
        for device in self._devices.values():
            device.reset()
        for port in self._upstream_ports.values():
            port.link.reset()
        self._forwarded_requests = 0


class SwitchPortKernel:
    """Flattened host-read path through one upstream port of one switch.

    ``host_read(device_access, channel, flat_bank, row, issue_ns)`` performs
    the scalar :meth:`FabricSwitch.host_read` arithmetic — upstream command
    flit, forwarding latency, device access (the ``access_host`` closure of
    a :class:`~repro.cxl.device.CXLDeviceKernel`), upstream data return —
    with the port-link state held in locals.  ``transfer`` exposes the raw
    upstream link for flows that serialize other message types on the same
    port (the PIFS instruction stream).
    """

    def __init__(self, switch: FabricSwitch, port: SwitchPort, row_bytes: int, forwarded_cell) -> None:
        self._link = port.link
        self._row_bytes = row_bytes
        self._flit_bytes = switch.config.flit_bytes
        self._forward_ns = type(switch).FORWARD_LATENCY_NS
        self._forwarded = forwarded_cell
        self.transfer, self.transfer_stream, self.host_read, self._snapshot = self._build()

    def _build(self):
        link = self._link
        bandwidth = link.bandwidth_gbps
        propagation = link.propagation_ns
        flit_bytes = self._flit_bytes
        row_bytes = self._row_bytes
        # The scalar path divides per transfer; dividing the same constants
        # once yields the identical doubles.
        flit_serialization = flit_bytes / bandwidth
        row_serialization = row_bytes / bandwidth
        read_bytes = flit_bytes + row_bytes
        forward_ns = self._forward_ns
        forwarded = self._forwarded
        busy_until = link.busy_until_ns
        queued = 0.0
        nbytes = 0
        transfers = 0

        def transfer(bytes_count: int, start_ns: float) -> float:
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            begin = start_ns if start_ns > busy_until else busy_until
            queued += begin - start_ns
            busy_until = begin + serialization
            nbytes += bytes_count
            transfers += 1
            return busy_until + propagation

        def transfer_stream(bytes_count: int, start_ns: float, count: int) -> list:
            """``count`` equal-size transfers all issued at ``start_ns``.

            One call replaces ``count`` ``transfer`` calls (the PIFS
            instruction stream, RecNMP's NMP command bursts); the loop body
            is the exact ``transfer`` arithmetic, so the returned arrival
            times are bit-identical.
            """
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            arrivals = []
            append = arrivals.append
            busy = busy_until
            wait = queued
            for _ in range(count):
                begin = start_ns if start_ns > busy else busy
                wait += begin - start_ns
                busy = begin + serialization
                append(busy + propagation)
            busy_until = busy
            queued = wait
            nbytes += bytes_count * count
            transfers += count
            return arrivals

        def host_read(device_access, channel: int, flat_bank: int, row: int, issue_ns: float) -> float:
            nonlocal busy_until, queued, nbytes, transfers
            forwarded[0] += 1
            # Upstream command flit, then the switch forwarding latency.
            begin = issue_ns if issue_ns > busy_until else busy_until
            queued += begin - issue_ns
            busy_until = begin + flit_serialization
            at_switch = busy_until + propagation + forward_ns
            # Device access (includes the downstream link both ways).
            data_at_switch = device_access(channel, flat_bank, row, at_switch)
            # Response data back over the upstream link.
            begin = data_at_switch if data_at_switch > busy_until else busy_until
            queued += begin - data_at_switch
            busy_until = begin + row_serialization
            nbytes += read_bytes
            transfers += 2
            return busy_until + propagation

        def snapshot():
            return busy_until, queued, nbytes, transfers

        return transfer, transfer_stream, host_read, snapshot

    def sync(self) -> None:
        busy_until, queued, nbytes, transfers = self._snapshot()
        link = self._link
        link._busy_until_ns = busy_until
        link._queued_ns += queued
        link._bytes_transferred += nbytes
        link._transfers += transfers
        self.transfer, self.transfer_stream, self.host_read, self._snapshot = self._build()


class FabricSwitchKernel:
    """Flattened kernel over one fabric switch and its upstream ports.

    Owns one :class:`SwitchPortKernel` per upstream port (created lazily via
    :meth:`port_kernel`) and the forwarded-request counter they share.
    Device kernels are owned by the caller (devices may be reachable from
    several switches' bookkeeping structures).
    """

    def __init__(self, switch: FabricSwitch, row_bytes: int) -> None:
        self._switch = switch
        self._row_bytes = row_bytes
        self._forwarded = [0]
        self._port_kernels: Dict[int, SwitchPortKernel] = {}

    @property
    def switch(self) -> FabricSwitch:
        return self._switch

    def port_kernel(self, port: SwitchPort) -> SwitchPortKernel:
        kernel = self._port_kernels.get(port.port_id)
        if kernel is None:
            kernel = SwitchPortKernel(self._switch, port, self._row_bytes, self._forwarded)
            self._port_kernels[port.port_id] = kernel
        return kernel

    def sync(self) -> None:
        """Write port-link state and the forwarded counter back to the switch."""
        self._switch._forwarded_requests += self._forwarded[0]
        self._forwarded[0] = 0
        for kernel in self._port_kernels.values():
            kernel.sync()


__all__ = ["FabricSwitch", "FabricSwitchKernel", "SwitchPort", "SwitchPortKernel"]
