"""CXL substrate: protocol messages, links, Type 3 devices, fabric switches.

The package models the CXL 2.0/3.0 constructs the paper relies on:

* ``CXL.mem`` M2S request / S2M response and ``CXL.cache`` D2H messages
  (:mod:`repro.cxl.protocol`),
* the FlexBus physical link with bandwidth occupancy and retimer latency
  (:mod:`repro.cxl.link`),
* Type 3 memory expanders built from the DRAM substrate
  (:mod:`repro.cxl.device`),
* the fabric switch with upstream/downstream ports, virtual CXL switches
  (VCS) and PPB/VPPB routing (:mod:`repro.cxl.switch`),
* the fabric manager that binds devices to virtual hierarchies
  (:mod:`repro.cxl.fabric_manager`),
* the host/device bias table (:mod:`repro.cxl.bias_table`), and
* multi-switch fabric topologies (:mod:`repro.cxl.topology`).
"""

from repro.cxl.bias_table import BiasMode, BiasTable
from repro.cxl.device import CXLType3Device
from repro.cxl.fabric_manager import FabricManager, PortBinding
from repro.cxl.link import CXLLink
from repro.cxl.protocol import (
    CXLCacheD2H,
    CXLMemM2S,
    CXLMemS2M,
    MemOpcode,
    is_pifs_opcode,
)
from repro.cxl.switch import FabricSwitch, SwitchPort
from repro.cxl.topology import FabricTopology

__all__ = [
    "BiasMode",
    "BiasTable",
    "CXLType3Device",
    "FabricManager",
    "PortBinding",
    "CXLLink",
    "CXLCacheD2H",
    "CXLMemM2S",
    "CXLMemS2M",
    "MemOpcode",
    "is_pifs_opcode",
    "FabricSwitch",
    "SwitchPort",
    "FabricTopology",
]
