"""Packaging for the PIFS-Rec reproduction (src layout, setuptools)."""

import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).parent
README = ROOT / "README.md"

# Single-source the version from the package (without importing it, which
# would require numpy at build time).
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="pifs-rec-repro",
    version=VERSION,
    description=(
        "Functional simulator reproducing PIFS-Rec: Process-In-Fabric-Switch "
        "for Large-Scale Recommendation System Inferences (MICRO 2024)"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "pifs-rec = repro.api.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
