"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses the PEP 517 path defined in pyproject.toml when
available; this file keeps `python setup.py develop` working offline.
"""

from setuptools import setup

setup()
