"""Bounded-memory regression: streaming residency is O(window), not O(trace).

The out-of-core promise in numbers: flattening a ~1M-request trace through
:meth:`StreamingWorkload.iter_windows` must stay within a fixed allocation
budget that is a small fraction of what the materialized request list
costs (~1 GiB at this scale — the eager twin of the big test is therefore
*skipped*, deliberately).  ``tracemalloc`` measures the peak python-side
allocation delta, which numpy array buffers participate in, so a window
accidentally pinned past its turn (or requests accumulated across
windows) fails loudly here long before a real trace would OOM a host.
"""

import tracemalloc
from dataclasses import replace

import pytest

from repro.api.registry import create_system
from repro.config import DEFAULT_SYSTEM, RMC1, WorkloadConfig, scaled_model
from repro.traces.workload import build_workload

MiB = 2**20

#: ~1M requests: 3907 batches x 64 samples x 4 tables.
BIG_CONFIG = WorkloadConfig(
    model=replace(scaled_model(RMC1, 4096 / RMC1.num_embeddings), num_tables=4),
    batch_size=64,
    num_batches=3907,
    pooling_factor=4,
    seed=42,
)
BIG_REQUESTS = 3907 * 64 * 4

#: Peak allocation budget for streaming the big trace.  Measured residency
#: is ~17 MiB (one 64-batch window of requests plus generator state); the
#: eager request list costs ~1 GiB, so the budget sits an order of
#: magnitude above noise and two below the failure mode.
BIG_BUDGET_BYTES = 96 * MiB


def _peak_delta(consume) -> int:
    """Peak tracemalloc delta (bytes) over ``consume()``."""
    tracemalloc.start()
    try:
        base, _ = tracemalloc.get_traced_memory()
        consume()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak - base


@pytest.mark.slow
def test_million_request_stream_holds_memory_budget():
    workload = build_workload(BIG_CONFIG, streaming=True)

    consumed = 0

    def consume():
        nonlocal consumed
        for window in workload.iter_windows():
            consumed += len(window)

    peak = _peak_delta(consume)
    assert consumed == BIG_REQUESTS  # the full ~1M-request trace went by
    assert peak < BIG_BUDGET_BYTES, (
        f"streaming a {consumed:,}-request trace peaked at "
        f"{peak / MiB:.1f} MiB (budget {BIG_BUDGET_BYTES / MiB:.0f} MiB) — "
        "a window is being retained past its turn"
    )


@pytest.mark.skip(
    reason="eager twin of the 1M-request trace materializes ~1 GiB of "
    "request objects by design; the streaming path above is the point"
)
def test_million_request_eager_baseline():  # pragma: no cover
    workload = build_workload(BIG_CONFIG)
    assert len(workload.requests) == BIG_REQUESTS


@pytest.mark.slow
def test_streaming_replay_end_to_end_holds_memory_budget():
    """A full closed-loop engine replay (placement, migration, DRAM models)
    over a streamed trace also stays O(window): the engine must consume
    windows as they come, never a materialized request list."""
    config = replace(BIG_CONFIG, num_batches=98)  # ~25k requests, same shape
    model = config.model
    system_config = replace(
        DEFAULT_SYSTEM,
        local_dram_capacity_bytes=max(8192, model.table_bytes),
        num_cxl_devices=2,
        host_threads=2,
    )
    workload = build_workload(config, streaming=True)
    system = create_system("pifs-rec", system_config).set_engine("vector")

    results = {}

    def consume():
        results["run"] = system.run(workload)

    peak = _peak_delta(consume)
    assert results["run"].total_ns > 0.0
    assert peak < 64 * MiB, (
        f"streaming replay peaked at {peak / MiB:.1f} MiB — the engine is "
        "materializing the trace instead of consuming windows"
    )
