"""Smoke tests for every experiment driver at the quick scale."""

import pytest

from repro.config import KIB
from repro.experiments import characterization, fig12, fig13, fig14, fig15, fig16_17, fig18, tables
from repro.experiments.common import QUICK_SCALE, EvaluationScale, evaluation_system, evaluation_workload


@pytest.fixture(scope="module")
def scale():
    return QUICK_SCALE


class TestCommon:
    def test_models_scaled_consistently(self, scale):
        assert scale.model("RMC1").num_embeddings < scale.model("RMC3").num_embeddings
        assert scale.model("RMC4").embedding_dim == 128

    def test_local_capacity_positive(self, scale):
        assert scale.local_capacity_bytes() > 0

    def test_workload_and_system_compose(self, scale):
        workload = evaluation_workload("RMC1", scale)
        system = evaluation_system(scale)
        assert workload.total_lookups > 0
        assert system.num_cxl_devices == scale.num_cxl_devices


class TestTables:
    def test_table1_has_four_models(self):
        rows = tables.table1_models()
        assert {r["name"] for r in rows} == {"RMC1", "RMC2", "RMC3", "RMC4"}

    def test_table2_structure(self):
        data = tables.table2_hardware()
        assert data["dram"]["cl_rcd_rp_ras"] == (28, 28, 28, 52)
        assert data["cxl"]["access_penalty_ns"] == 100.0

    def test_table3_covers_all_specs(self):
        assert len(tables.table3_specs()) == 7


class TestCharacterization:
    def test_fig5_structure_and_trends(self):
        data = characterization.run_fig5(
            table_sizes=(16384, 65536), embedding_dims=(64,), lookups_per_thread=32
        )
        assert set(data) == {"remote", "cxl", "interleave"}
        for threading in ("batch", "table"):
            # Spilling to remote/CXL costs bandwidth relative to local-only.
            assert data["remote"][threading][64][16384] < 1.0
            assert data["cxl"][threading][64][16384] < 1.0
            # Interleaving beats relying on CXL alone.
            assert data["interleave"][threading][64][16384] > 1.0

    def test_fig6_shares_sum_to_one(self):
        data = characterization.run_fig6(configs=((8, 32), (8, 64)), lookups_per_thread=32)
        for entry in data.values():
            assert entry["dimm"] + entry["cxl"] == pytest.approx(1.0)
            assert entry["dimm"] > entry["cxl"] > 0.0

    def test_invalid_threading_mode(self):
        with pytest.raises(ValueError):
            characterization.run_lookup_phase("local", "diagonal", 1024, 64)


class TestFig12:
    def test_fig12a_quick(self, scale):
        data = fig12.run_fig12a(scale, systems=("pond", "pifs-rec"), models=("RMC4",))
        assert data["RMC4"]["pifs-rec"] < data["RMC4"]["pond"]

    def test_fig12b_quick(self, scale):
        data = fig12.run_fig12b(scale, systems=("pond", "pifs-rec"), traces=("meta", "uniform"))
        for trace in ("meta", "uniform"):
            assert data[trace]["pifs-rec"] < data[trace]["pond"]

    def test_fig12c_quick(self, scale):
        data = fig12.run_fig12c(scale, systems=("pifs-rec",), device_counts=(2, 4), model="RMC4")
        assert set(data) == {2, 4}

    def test_fig12d_quick(self, scale):
        data = fig12.run_fig12d(scale, systems=("pond",), multipliers=(1, 4), model="RMC4")
        assert data[4]["pond"] <= data[1]["pond"]

    def test_fig12e_quick(self, scale):
        data = fig12.run_fig12e(scale, models=("RMC4",))
        steps = data["RMC4"]
        assert steps["PC/OoO/PM/OSB"] < steps["Baseline"]
        assert list(steps) == list(fig12.ABLATION_STEPS)


class TestFig13:
    def test_fig13a_quick(self, scale):
        data = fig13.run_fig13a(scale, thresholds=(0.35,), model="RMC4")
        entry = data[0.35]
        assert entry["latency_cacheline_block"] > 0
        assert entry["migration_cost_page_block"] >= entry["migration_cost_cacheline_block"]

    def test_fig13b_quick(self, scale):
        data = fig13.run_fig13b(scale, model="RMC4", num_devices=4)
        assert set(data["before"]) == set(data["after"])
        assert data["std"][0] >= 0 and data["std"][1] >= 0

    def test_fig13c_quick(self, scale):
        data = fig13.run_fig13c(scale, switch_counts=(1, 2), batch_sizes=(8,), model="RMC4")
        assert data[8][2] <= data[8][1] * 1.1

    def test_fig13d_quick(self, scale):
        data = fig13.run_fig13d(scale, thresholds=(0.16,), model="RMC4")
        assert "TPP" in data
        assert data["0.16"]["latency"] > 0


class TestFig14And15:
    def test_fig14_quick(self, scale):
        data = fig14.run_fig14(scale, models=("RMC1",), host_counts=(1, 2), batch_sizes=(8,))
        speedups = data["RMC1"][8]
        assert speedups[2] >= speedups[1] * 0.95
        assert all(v >= 1.0 for v in speedups.values())

    def test_fig15_quick(self, scale):
        data = fig15.run_fig15(
            scale, buffer_sizes=(64 * KIB, 512 * KIB), policies=("htr",), model="RMC4"
        )
        small = data["htr"][64 * KIB]
        large = data["htr"][512 * KIB]
        assert large["hit_ratio"] >= small["hit_ratio"]
        assert large["speedup"] >= 1.0


class TestCostFigures:
    def test_fig16_normalization(self):
        data = fig16_17.run_fig16(models=("RMC4",))
        totals = [v["total"] for v in data["RMC4"].values()]
        assert max(totals) == pytest.approx(1.0)
        assert data["RMC4"]["Ours"]["total"] < data["RMC4"]["X2"]["total"]

    def test_fig17_crossover(self):
        data = fig16_17.run_fig17()
        assert data["RMC1"]["GPUX4"] > data["RMC1"]["PIFS-Rec"]
        assert data["RMC4"]["PIFS-Rec"] > data["RMC4"]["GPUX4"]

    def test_performance_per_watt_improves_with_model_size(self):
        ppw = fig16_17.run_performance_per_watt()
        assert ppw["RMC4"] > ppw["RMC1"]

    def test_fig18_reductions(self):
        data = fig18.run_fig18()
        assert data["reductions"]["power_reduction_x"] == pytest.approx(2.7, rel=0.05)
        assert data["reductions"]["area_reduction_x"] == pytest.approx(2.02, rel=0.05)

    def test_energy_comparison(self, scale):
        data = fig18.run_energy_comparison(scale, model="RMC1")
        assert data["pifs_mj"] > 0 and data["pond_mj"] > 0
        assert data["saving_fraction"] > 0.0
