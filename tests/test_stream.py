"""Streaming ≡ eager: property tests for the out-of-core trace path.

The streaming workload promises *bit-identical reconstruction*: whatever
trace batches go in — random bag boundaries, empty bags, any window size
(including 1 and larger than the whole trace), either on-disk format —
the lazily flattened request stream must equal the eager one element for
element.  Hypothesis drives the shapes so the identity is a property of
the flattening code, not of one golden trace.
"""

import pickle
from itertools import chain, zip_longest

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RMC1, WorkloadConfig, scaled_model
from repro.traces.files import save_criteo_tsv, save_trace, workload_from_trace
from repro.traces.meta import TraceBatch
from repro.traces.stream import (
    DEFAULT_WINDOW_BATCHES,
    MemoryBatchStream,
    NpzBatchStream,
    SyntheticBatchStream,
    TsvBatchStream,
)
from repro.traces.workload import (
    StreamingWorkload,
    build_workload,
    workload_from_batches,
)

MODEL = scaled_model(RMC1, 256 / RMC1.num_embeddings)


# ---------------------------------------------------------------------------
# Random traces: arbitrary bag boundaries, empty bags included
# ---------------------------------------------------------------------------
def random_batches(seed, num_batches, num_tables, batch_size, max_pool):
    """Random batches with jagged bags — empty bags and pool-size spread."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(num_batches):
        indices_per_table, offsets_per_table = [], []
        for _ in range(num_tables):
            pools = rng.integers(0, max_pool + 1, size=batch_size)
            offsets = np.concatenate([[0], np.cumsum(pools)[:-1]]).astype(np.int64)
            indices = rng.integers(
                0, MODEL.num_embeddings, size=int(pools.sum()), dtype=np.int64
            )
            indices_per_table.append(indices)
            offsets_per_table.append(offsets)
        batches.append(
            TraceBatch(
                indices_per_table=indices_per_table,
                offsets_per_table=offsets_per_table,
            )
        )
    return batches


def assert_requests_equal(eager_requests, streamed_requests):
    """Element-for-element equality, array contents included."""
    for eager, streamed in zip_longest(eager_requests, streamed_requests):
        assert eager is not None and streamed is not None, "length mismatch"
        assert eager.request_id == streamed.request_id
        assert eager.host_id == streamed.host_id
        assert eager.table == streamed.table
        assert eager.sample == streamed.sample
        assert eager.row_bytes == streamed.row_bytes
        assert np.array_equal(eager.rows, streamed.rows)
        assert np.array_equal(eager.addresses, streamed.addresses)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_batches=st.integers(min_value=1, max_value=6),
    num_tables=st.integers(min_value=1, max_value=3),
    batch_size=st.integers(min_value=1, max_value=5),
    max_pool=st.integers(min_value=0, max_value=4),
    window_batches=st.integers(min_value=1, max_value=8),
    num_hosts=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_streaming_reconstruction_is_bit_identical(
    seed, num_batches, num_tables, batch_size, max_pool, window_batches, num_hosts
):
    """The core property: any trace, any window size (1 .. > trace length),
    any host fan-out — ``chain(*iter_windows())`` equals the eager list."""
    batches = random_batches(seed, num_batches, num_tables, batch_size, max_pool)
    eager = workload_from_batches(batches, MODEL, num_hosts=num_hosts)
    streaming = StreamingWorkload(
        MemoryBatchStream(batches),
        MODEL,
        num_hosts=num_hosts,
        window_batches=window_batches,
    )
    assert_requests_equal(eager.requests, chain(*streaming.iter_windows()))
    # Aggregates agree without materializing a single request.
    assert len(streaming) == len(eager.requests)
    assert streaming.total_lookups == eager.total_lookups
    assert streaming.total_bytes == eager.total_bytes
    assert streaming.unique_pages() == eager.unique_pages()


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    window_batches=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_windows_partition_the_stream(seed, window_batches):
    """windows() is a pure grouping: concatenation restores the batch list,
    every window is full except possibly the last."""
    batches = random_batches(seed, 5, 2, 3, 3)
    stream = MemoryBatchStream(batches)
    windows = list(stream.windows(window_batches))
    assert [b for w in windows for b in w] == batches
    assert all(len(w) == window_batches for w in windows[:-1])
    if windows:
        assert 1 <= len(windows[-1]) <= window_batches


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_streams_are_reiterable(seed):
    """Two passes over one stream observe identical batches (profiling pass
    + replay pass + verification pass all see the same trace)."""
    config = WorkloadConfig(model=MODEL, batch_size=3, num_batches=2, seed=seed)
    stream = SyntheticBatchStream(config)
    first, second = list(stream), list(stream)
    assert len(first) == len(second) > 0
    for a, b in zip(first, second):
        for t in range(a.num_tables):
            assert np.array_equal(a.indices_per_table[t], b.indices_per_table[t])
            assert np.array_equal(a.offsets_per_table[t], b.offsets_per_table[t])


# ---------------------------------------------------------------------------
# On-disk round trips: npz and TSV streamed vs loaded whole
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    window_batches=st.sampled_from([1, 3, DEFAULT_WINDOW_BATCHES]),
)
@settings(max_examples=10, deadline=None)
def test_npz_streamed_equals_eager(seed, window_batches, tmp_path_factory):
    batches = random_batches(seed, 4, 2, 3, 3)
    path = tmp_path_factory.mktemp("npz") / "trace.npz"
    save_trace(batches, path)
    eager = workload_from_trace(path, MODEL)
    streamed = workload_from_trace(
        path, MODEL, streaming=True, window_batches=window_batches
    )
    assert streamed.streaming and isinstance(streamed.stream, NpzBatchStream)
    assert_requests_equal(eager.requests, iter(streamed))


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    batch_size=st.integers(min_value=1, max_value=7),
    window_batches=st.sampled_from([1, 2, DEFAULT_WINDOW_BATCHES]),
)
@settings(max_examples=10, deadline=None)
def test_tsv_streamed_equals_eager(seed, batch_size, window_batches, tmp_path_factory):
    # TSV is single-lookup-per-bag by format; vary the batch regrouping.
    batches = random_batches(seed, 3, 2, 4, 1)
    single = [
        TraceBatch(
            indices_per_table=b.indices_per_table,
            offsets_per_table=[
                np.arange(len(idx), dtype=np.int64) for idx in b.indices_per_table
            ],
        )
        for b in batches
        if all(len(idx) == b.batch_size for idx in b.indices_per_table)
    ]
    if not single:  # degenerate draw: no expressible batch
        return
    path = tmp_path_factory.mktemp("tsv") / "trace.tsv"
    save_criteo_tsv(single, path)
    eager = workload_from_trace(path, MODEL, batch_size=batch_size)
    streamed = workload_from_trace(
        path, MODEL, batch_size=batch_size, streaming=True,
        window_batches=window_batches,
    )
    assert isinstance(streamed.stream, TsvBatchStream)
    assert_requests_equal(eager.requests, iter(streamed))


# ---------------------------------------------------------------------------
# The streaming container's contract
# ---------------------------------------------------------------------------
class TestStreamingWorkloadContract:
    def test_requests_attribute_refuses(self):
        streaming = build_workload(
            WorkloadConfig(model=MODEL, batch_size=2, num_batches=1, seed=1),
            streaming=True,
        )
        with pytest.raises(AttributeError, match="no materialized request list"):
            streaming.requests

    def test_synthetic_streaming_equals_eager(self):
        config = WorkloadConfig(
            model=MODEL, batch_size=4, num_batches=3, pooling_factor=6, seed=9
        )
        eager = build_workload(config, num_hosts=2)
        streaming = build_workload(config, num_hosts=2, streaming=True)
        assert_requests_equal(eager.requests, iter(streaming))
        assert_requests_equal(eager.requests, streaming.materialize().requests)

    def test_window_larger_than_trace(self):
        config = WorkloadConfig(model=MODEL, batch_size=2, num_batches=2, seed=3)
        eager = build_workload(config)
        streaming = build_workload(config, streaming=True, window_batches=10_000)
        windows = list(streaming.iter_windows())
        assert len(windows) == 1  # everything fits one window
        assert_requests_equal(eager.requests, windows[0])

    def test_invalid_window_rejected(self):
        config = WorkloadConfig(model=MODEL, batch_size=2, num_batches=1, seed=1)
        with pytest.raises(ValueError, match="window_batches must be positive"):
            build_workload(config, streaming=True, window_batches=0)
        streaming = build_workload(config, streaming=True)
        with pytest.raises(ValueError, match="window_batches must be positive"):
            next(streaming.iter_windows(0))

    def test_pickles_as_a_handle(self, tmp_path):
        """Sweep workers receive path + params, not megabytes of arrays."""
        batches = random_batches(5, 3, 2, 3, 2)
        path = save_trace(batches, tmp_path / "trace.npz")
        streaming = workload_from_trace(path, MODEL, streaming=True)
        clone = pickle.loads(pickle.dumps(streaming))
        assert clone.stream.path == streaming.stream.path
        assert_requests_equal(iter(streaming), iter(clone))
        # The handle is small: no batch arrays ride along.
        assert len(pickle.dumps(streaming)) < 4096
