"""Tests for trace generation and the workload container (repro.traces)."""

import numpy as np
import pytest

from repro.config import RMC1, WorkloadConfig, scaled_model
from repro.traces.meta import generate_meta_like_trace
from repro.traces.synthetic import TraceDistribution, generate_indices
from repro.traces.workload import build_workload


class TestDistributions:
    @pytest.mark.parametrize("name", ["meta", "zipfian", "normal", "uniform", "random"])
    def test_from_name(self, name):
        assert TraceDistribution.from_name(name).value == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            TraceDistribution.from_name("gaussian-ish")

    @pytest.mark.parametrize("dist", list(TraceDistribution))
    def test_indices_in_range(self, dist):
        rng = np.random.default_rng(0)
        indices = generate_indices(dist, 500, 1000, rng=rng)
        assert indices.dtype == np.int64
        assert len(indices) == 500
        assert indices.min() >= 0
        assert indices.max() < 1000

    def test_zero_count(self):
        assert len(generate_indices(TraceDistribution.UNIFORM, 0, 10)) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_indices(TraceDistribution.UNIFORM, -1, 10)
        with pytest.raises(ValueError):
            generate_indices(TraceDistribution.UNIFORM, 10, 0)

    def test_zipfian_more_skewed_than_uniform(self):
        rng = np.random.default_rng(1)
        zipf = generate_indices(TraceDistribution.ZIPFIAN, 5000, 1000, rng=rng)
        uniform = generate_indices(TraceDistribution.UNIFORM, 5000, 1000, rng=rng)
        top_zipf = np.bincount(zipf, minlength=1000).max()
        top_uniform = np.bincount(uniform, minlength=1000).max()
        assert top_zipf > 3 * top_uniform

    def test_meta_trace_has_hot_set(self):
        rng = np.random.default_rng(2)
        indices = generate_indices(TraceDistribution.META, 10000, 10000, rng=rng)
        counts = np.bincount(indices, minlength=10000)
        hot_rows = int(10000 * 0.05)
        hot_share = np.sort(counts)[::-1][:hot_rows].sum() / counts.sum()
        assert hot_share > 0.5  # the hot set captures most accesses

    def test_uniform_is_balanced(self):
        indices = generate_indices(TraceDistribution.UNIFORM, 1000, 100)
        counts = np.bincount(indices, minlength=100)
        assert counts.max() - counts.min() <= 1


class TestMetaTrace:
    def test_batch_structure(self):
        config = WorkloadConfig(model=scaled_model(RMC1, 0.05), batch_size=4, num_batches=3)
        batches = generate_meta_like_trace(config)
        assert len(batches) == 3
        for batch in batches:
            assert batch.num_tables == config.model.num_tables
            assert batch.batch_size == 4
            assert batch.total_lookups > 0

    def test_deterministic_for_seed(self):
        config = WorkloadConfig(model=scaled_model(RMC1, 0.05), batch_size=4, seed=9)
        a = generate_meta_like_trace(config)
        b = generate_meta_like_trace(config)
        np.testing.assert_array_equal(a[0].indices_per_table[0], b[0].indices_per_table[0])


class TestWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        config = WorkloadConfig(
            model=scaled_model(RMC1, 0.05), batch_size=4, num_batches=2, pooling_factor=6
        )
        return build_workload(config)

    def test_request_count(self, workload):
        assert 0 < len(workload) <= 2 * 4 * workload.model.num_tables
        assert workload.total_lookups == sum(r.num_candidates for r in workload)

    def test_addresses_match_rows(self, workload):
        request = workload.requests[0]
        for row, address in zip(request.rows, request.addresses):
            assert workload.address_space.locate(int(address)) == (request.table, int(row))

    def test_bytes_accessed(self, workload):
        request = workload.requests[0]
        assert request.bytes_accessed == request.num_candidates * workload.model.embedding_row_bytes

    def test_unique_pages_positive(self, workload):
        assert 0 < workload.unique_pages() <= workload.address_space.total_pages

    def test_multi_host_assignment(self):
        config = WorkloadConfig(model=scaled_model(RMC1, 0.05), batch_size=8, num_batches=1)
        workload = build_workload(config, num_hosts=4)
        hosts = {r.host_id for r in workload.requests}
        assert hosts == {0, 1, 2, 3}

    def test_distribution_override(self):
        config = WorkloadConfig(model=scaled_model(RMC1, 0.05), batch_size=2, num_batches=1)
        workload = build_workload(config, distribution="uniform")
        assert workload.distribution == "uniform"
