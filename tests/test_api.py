"""Tests for the ``repro.api`` façade: registry, sessions, sweeps, results."""

import json

import pytest

from repro.api import (
    DuplicateSystemError,
    RunResult,
    Simulation,
    Sweep,
    SweepResult,
    UnknownSystemError,
    available_systems,
    clear_cache,
    create_system,
    point,
    register_system,
    spec_key,
    system_factory,
    unregister_system,
)
from repro.api.session import cache_size
from repro.baselines import SYSTEM_FACTORIES
from repro.baselines.pond import PondSystem
from repro.config import DEFAULT_SYSTEM
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale, evaluation_system
from repro.sls.result import SimResult

#: Very small scale so API tests stay fast.
TINY_SCALE = EvaluationScale(
    model_scale=0.004,
    num_tables=2,
    batch_size=2,
    num_batches=1,
    pooling_factor=4,
    host_threads=4,
    migration_epoch_accesses=256,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_builtins_registered(self):
        names = available_systems()
        for name in ("pond", "pond+pm", "beacon", "recnmp", "tpp", "pifs-rec", "pifs-rec-nopm"):
            assert name in names

    def test_decorator_registration_and_unregister(self):
        @register_system("test-dummy")
        class Dummy(PondSystem):
            name = "Dummy"

        try:
            assert "test-dummy" in available_systems()
            assert system_factory("TEST-DUMMY") is Dummy
        finally:
            unregister_system("test-dummy")
        assert "test-dummy" not in available_systems()

    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateSystemError):
            register_system("pond", PondSystem.__bases__[0])

    def test_same_factory_reregistration_is_noop(self):
        register_system("pond", system_factory("pond"))
        assert system_factory("pond") is SYSTEM_FACTORIES["pond"]

    def test_unknown_name(self, tiny_system):
        with pytest.raises(UnknownSystemError) as excinfo:
            create_system("magic", tiny_system)
        assert "magic" in str(excinfo.value)
        # Stays catchable as the KeyError the old registry raised.
        with pytest.raises(KeyError):
            create_system("magic", tiny_system)

    def test_unknown_system_error_pickles(self):
        import pickle

        error = UnknownSystemError("typo", {"pond": None, "beacon": None})
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, UnknownSystemError)
        assert clone.name == "typo"
        assert clone.known == error.known
        assert str(clone) == str(error)

    def test_parallel_sweep_propagates_unknown_system(self):
        sweep = Sweep(
            over={"system": ["definitely-not-registered", "pond"]},
            base=Simulation(scale=TINY_SCALE),
        )
        with pytest.raises(UnknownSystemError):
            sweep.run(parallel=True, processes=2, cache=False)

    def test_suggestion_for_close_miss(self, tiny_system):
        with pytest.raises(UnknownSystemError) as excinfo:
            create_system("pifs_rec", tiny_system)
        assert "did you mean" in str(excinfo.value)

    def test_unregistered_builtin_self_heals(self):
        unregister_system("pond")
        assert "pond" in available_systems()  # listings restore without a resolve
        assert system_factory("pond") is PondSystem
        assert "pond" in SYSTEM_FACTORIES

    def test_legacy_mapping_view(self):
        assert "pond" in SYSTEM_FACTORIES
        assert set(SYSTEM_FACTORIES) == set(available_systems())
        assert callable(SYSTEM_FACTORIES["pifs-rec"])


class TestSimulationBuilder:
    def test_defaults_track_default_system(self):
        sim = Simulation()
        spec = sim.spec()
        assert spec.system == "pifs-rec"
        assert spec.model == "RMC1"
        assert spec.scale is DEFAULT_SCALE
        assert spec.base_config is DEFAULT_SYSTEM
        # The derived machine equals the plain evaluation derivation of the
        # default scale over DEFAULT_SYSTEM.
        assert sim.build_system_config() == evaluation_system(DEFAULT_SCALE)

    def test_fluent_chaining_and_describe(self):
        sim = Simulation("pond").model("RMC4").hosts(2).batch_size(64).quick()
        coords = sim.describe()
        assert coords["system"] == "pond"
        assert coords["model"] == "RMC4"
        assert coords["hosts"] == 2
        assert coords["batch_size"] == 64
        config = sim.build_system_config()
        assert config.num_hosts == 2

    def test_clone_isolated(self):
        base = Simulation("pond").scale(TINY_SCALE)
        other = base.clone().system("pifs-rec").batch_size(4)
        assert base.spec().system == "pond"
        assert base.spec().batch_size is None
        assert other.spec().system == "pifs-rec"

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError):
            Simulation(bogus_setting=3)

    def test_non_setter_methods_rejected_as_settings(self):
        with pytest.raises(ValueError):
            Simulation(run=True)
        with pytest.raises(ValueError):
            Sweep(over={"clone": [1]}, base=Simulation(scale=TINY_SCALE)).simulations()

    def test_model_names_case_insensitive_and_validated(self):
        assert Simulation().model("rmc4").spec().model == "RMC4"
        with pytest.raises(ValueError) as excinfo:
            Simulation().model("RMC9")
        assert "RMC1" in str(excinfo.value)

    def test_run_produces_runresult(self):
        run = Simulation("pond").scale(TINY_SCALE).run()
        assert isinstance(run, RunResult)
        assert run.system == "pond"
        assert run.total_ns > 0
        assert run.sim.requests > 0

    def test_run_caches_by_config_hash(self):
        sim = Simulation("pond").scale(TINY_SCALE)
        first = sim.run()
        assert cache_size() == 1
        second = sim.clone().run()
        assert cache_size() == 1  # cache hit, no re-simulation
        assert second.sim == first.sim
        third = sim.clone().batch_size(4).run()
        assert third.config_key != first.config_key
        assert cache_size() == 2

    def test_cache_hits_return_caller_owned_copies(self):
        sim = Simulation("pond").scale(TINY_SCALE)
        first = sim.run()
        first.params["note"] = "annotated by caller"
        first.sim.total_ns = 12345.0
        first.sim.device_access_counts.clear()
        second = sim.clone().run()
        assert "note" not in second.params  # cache entry not poisoned
        assert second.sim.total_ns != 12345.0
        assert second.sim.device_access_counts

    def test_spec_key_stable_and_sensitive(self):
        a = Simulation("pond").scale(TINY_SCALE).spec()
        b = Simulation("pond").scale(TINY_SCALE).spec()
        c = Simulation("pond").scale(TINY_SCALE).devices(2).spec()
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)

    def test_spec_key_hashes_option_objects_structurally(self):
        from repro.pagemgmt.global_hotness import GlobalHotnessPolicy

        def key_for(threshold):
            # Fresh policy object each call: equal state must mean equal key,
            # regardless of object identity or reused memory addresses.
            policy = GlobalHotnessPolicy(cold_age_threshold=threshold)
            return spec_key(
                Simulation("pifs-rec").scale(TINY_SCALE).options(hotness_policy=policy).spec()
            )

        assert key_for(0.04) == key_for(0.04)
        assert key_for(0.04) != key_for(0.20)

    def test_spec_key_distinguishes_closures_and_partials(self):
        from functools import partial

        from repro.config import replace_page_mgmt

        def key_with(transform):
            return spec_key(Simulation("pond").scale(TINY_SCALE).configure(transform).spec())

        def make_transform(threshold):
            def transform(config):
                return replace_page_mgmt(config, migrate_threshold=threshold)
            return transform

        # Two closures from the same factory share a qualname but differ in
        # captured state; two equal-state partials must hash identically.
        assert key_with(make_transform(0.10)) != key_with(make_transform(0.50))
        assert key_with(lambda c, t=0.1: replace_page_mgmt(c, migrate_threshold=t)) != \
            key_with(lambda c, t=0.5: replace_page_mgmt(c, migrate_threshold=t))
        assert key_with(partial(replace_page_mgmt, migrate_threshold=0.2)) == \
            key_with(partial(replace_page_mgmt, migrate_threshold=0.2))

    def test_spec_key_distinguishes_lambda_constants(self):
        from dataclasses import replace as dc_replace

        def key_with(transform):
            return spec_key(Simulation("pond").scale(TINY_SCALE).configure(transform).spec())

        # Same bytecode, different literal constant: must not collide.
        assert key_with(lambda c: dc_replace(c, num_hosts=2)) != \
            key_with(lambda c: dc_replace(c, num_hosts=4))

    def test_replacing_a_registered_factory_invalidates_cached_key(self):
        first = Simulation("pond").scale(TINY_SCALE).run()

        class OtherPond(PondSystem):
            name = "OtherPond"

        register_system("pond", OtherPond, replace=True)
        try:
            second = Simulation("pond").scale(TINY_SCALE).run()
            assert second.config_key != first.config_key
            assert second.sim is not first.sim
            assert second.sim.system == "OtherPond"
        finally:
            register_system("pond", PondSystem, replace=True)

    def test_stable_token_distinguishes_parametrized_classes(self):
        from repro.api.session import _stable_token

        def make(extra):
            class Custom(PondSystem):
                def process_request(self, request, start_ns, host_id):
                    return super().process_request(request, start_ns, host_id) + extra

            return Custom

        # Same qualname, different captured behavior: distinct tokens.
        assert _stable_token(make(0)) != _stable_token(make(1_000_000))
        # Equal behavior: equal tokens (and no super()-cycle blowup).
        assert _stable_token(make(5)) == _stable_token(make(5))

    def test_registration_is_atomic_on_alias_conflict(self):
        from repro.api import DuplicateSystemError

        class Mine(PondSystem):
            name = "Mine"

        with pytest.raises(DuplicateSystemError):
            register_system("mine-unique", Mine, aliases=("pond",))
        # The failed call must not leave the primary name half-registered.
        assert "mine-unique" not in available_systems()

    def test_stable_token_distinguishes_set_state(self):
        from repro.api.session import _stable_token

        assert _stable_token({1, 2, 3}) != _stable_token(set())
        assert _stable_token(frozenset({"a"})) != _stable_token(frozenset({"b"}))
        assert _stable_token({2, 1}) == _stable_token({1, 2})

    def test_cache_key_computed_before_run(self):
        from repro.pagemgmt.global_hotness import GlobalHotnessPolicy

        def fresh():
            return (
                Simulation("pifs-rec")
                .scale(TINY_SCALE)
                .options(hotness_policy=GlobalHotnessPolicy(cold_age_threshold=0.16))
            )

        first = fresh().run()
        assert cache_size() == 1
        # The policy object mutates during the run; an identical fresh spec
        # must still hit the cache (key hashed pre-run, not post-run).
        second = fresh().run()
        assert cache_size() == 1
        assert second.config_key == first.config_key
        assert second.sim == first.sim

    def test_explicit_zero_values_are_honored(self):
        from repro.experiments.common import evaluation_system

        config = evaluation_system(TINY_SCALE, local_capacity_bytes=0)
        assert config.local_dram_capacity_bytes == 0
        workload = Simulation().scale(TINY_SCALE).num_batches(0).build_workload()
        assert len(workload.requests) == 0


class TestResultsRoundTrip:
    def test_simresult_json_round_trip(self):
        sim = Simulation("pifs-rec").scale(TINY_SCALE).run().sim
        assert isinstance(sim, SimResult)
        clone = SimResult.from_dict(json.loads(json.dumps(sim.to_dict())))
        assert clone == sim

    def test_runresult_json_round_trip(self):
        run = Simulation("pond").scale(TINY_SCALE).run()
        clone = RunResult.from_json(run.to_json())
        assert clone == run
        assert clone.sim.device_access_counts == run.sim.device_access_counts

    def test_sweepresult_json_round_trip(self):
        result = Sweep(
            over={"system": ["pond", "pifs-rec"]},
            base=Simulation(scale=TINY_SCALE),
        ).run()
        clone = SweepResult.from_json(result.to_json())
        assert clone == result
        assert clone.pivot("system", "model") == result.pivot("system", "model")

    def test_metric_rejects_non_numeric_names(self):
        run = Simulation("pond").scale(TINY_SCALE).run()
        assert run.metric("total_ns") == run.total_ns
        for bad in ("system", "speedup_over", "device_access_counts", "no_such_metric"):
            with pytest.raises(AttributeError):
                run.metric(bad)

    def test_metric_and_speedup_helpers(self):
        result = Sweep(
            over={"system": ["pond", "pifs-rec"]},
            base=Simulation(scale=TINY_SCALE),
        ).run()
        pond = result.only(system="pond")
        pifs = result.only(system="pifs-rec")
        assert pifs.speedup_over(pond) == pond.total_ns / pifs.total_ns
        normalized = result.normalized("total_ns")
        assert max(normalized) == pytest.approx(1.0)


class TestSweep:
    def test_2x2_grid_deterministic_order(self):
        sweep = Sweep(
            over={"system": ["pond", "pifs-rec"], "batch_size": [2, 4]},
            base=Simulation(scale=TINY_SCALE),
        )
        assert len(sweep) == 4
        result = sweep.run(cache=False)
        coords = [(r.params["system"], r.params["batch_size"]) for r in result]
        assert coords == [("pond", 2), ("pond", 4), ("pifs-rec", 2), ("pifs-rec", 4)]

    def test_serial_and_parallel_identical(self):
        sweep = Sweep(
            over={"system": ["pond", "pifs-rec"], "batch_size": [2, 4]},
            base=Simulation(scale=TINY_SCALE),
        )
        serial = sweep.run(parallel=False, cache=False)
        parallel = sweep.run(parallel=True, processes=2, cache=False)
        assert serial.to_json() == parallel.to_json()

    def test_sweep_uses_cache(self):
        base = Simulation(scale=TINY_SCALE)
        Sweep(over={"system": ["pond"]}, base=base).run()
        assert cache_size() == 1
        result = Sweep(over={"system": ["pond"], "batch_size": [TINY_SCALE.batch_size]}, base=base).run()
        # An explicit batch equal to the scale default normalizes to the
        # same cache key: pure cache hit, nothing re-simulates.
        assert cache_size() == 1
        assert len(result) == 1
        assert result[0].params["batch_size"] == TINY_SCALE.batch_size

    def test_name_and_factory_sessions_share_cache(self):
        first = Simulation("pond").scale(TINY_SCALE).run()
        assert cache_size() == 1
        second = Simulation(PondSystem).scale(TINY_SCALE).run()
        assert cache_size() == 1  # cache hit: the name resolved to the factory
        assert second.sim == first.sim
        # Labels follow the requesting session, not whichever form ran first.
        assert first.system == "pond"
        assert second.system == "Pond"

    def test_untokenizable_option_bypasses_cache(self):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        sim = Simulation("pond").scale(TINY_SCALE).options(marker=Unpicklable())
        from repro.api.session import safe_spec_key

        assert safe_spec_key(sim.spec()) is None

    def test_stable_token_hashes_numpy_content(self):
        import numpy as np

        from repro.api.session import _stable_token

        assert _stable_token(np.array([1])) != _stable_token(np.array([2, 3, 4]))
        assert _stable_token(np.array([1, 2])) == _stable_token(np.array([1, 2]))

    def test_sweep_rerun_hits_cache_despite_stateful_options(self):
        from repro.pagemgmt.global_hotness import GlobalHotnessPolicy

        sweep = Sweep(
            over={
                "config": [
                    point(
                        "tuned",
                        system="pifs-rec",
                        options={"hotness_policy": GlobalHotnessPolicy(cold_age_threshold=0.16)},
                    )
                ]
            },
            base=Simulation(scale=TINY_SCALE),
        )
        first = sweep.run()
        assert cache_size() == 1
        # The policy object may mutate during the run; re-running the same
        # sweep must still hit the cache (keys frozen at compile time).
        second = sweep.run()
        assert cache_size() == 1
        assert second[0].sim == first[0].sim

    def test_axis_points_bundle_settings(self):
        result = Sweep(
            over={"fabric": [point(1, hosts=1, switches=1), point(2, hosts=2, switches=2)]},
            base=Simulation("pifs-rec", scale=TINY_SCALE),
        ).run()
        assert [r.params["fabric"] for r in result] == [1, 2]
        assert [r.params["hosts"] for r in result] == [1, 2]

    def test_pivot_matches_where(self):
        result = Sweep(
            over={"system": ["pond", "pifs-rec"], "batch_size": [2, 4]},
            base=Simulation(scale=TINY_SCALE),
        ).run()
        table = result.pivot("batch_size", "system")
        assert table[2]["pond"] == result.only(system="pond", batch_size=2).total_ns
        assert set(table) == {2, 4}

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep(over={"system": []})
        with pytest.raises(ValueError):
            Sweep(over={})


class TestCLI:
    def test_run_subcommand(self, capsys):
        from repro.api.cli import main

        assert main(["run", "pifs-rec", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "pifs-rec" in out
        assert "total latency" in out

    def test_sweep_subcommand_prints_comparison(self, capsys):
        from repro.api.cli import main

        assert main([
            "sweep", "--system", "pond", "--system", "pifs-rec",
            "--batch-size", "2", "--batch-size", "4", "--quick", "--serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "total_ns" in out
        assert "speedup over 'pond'" in out

    def test_systems_subcommand(self, capsys):
        from repro.api.cli import main

        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "pifs-rec" in out and "pond" in out

    def test_run_json_round_trips(self, capsys):
        from repro.api.cli import main

        assert main(["run", "pond", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert RunResult.from_dict(payload).system == "pond"


class TestSweepEngineCacheKey:
    """The config-hash cache must never serve one engine's results to the other."""

    def test_sweep_cache_key_distinguishes_engines(self):
        clear_cache()
        grid = {"batch_size": [2, 4]}
        scalar = Sweep(grid, base=Simulation("pond").scale(TINY_SCALE)).run()
        size_after_scalar = cache_size()
        assert size_after_scalar >= 2
        vector = Sweep(
            grid, base=Simulation("pond").scale(TINY_SCALE).engine("vector")
        ).run()
        # The vector points executed and were cached under their own keys —
        # not served from the scalar entries.
        assert cache_size() == size_after_scalar + 2
        for scalar_run, vector_run in zip(scalar, vector):
            assert scalar_run.config_key and vector_run.config_key
            assert scalar_run.config_key != vector_run.config_key
            # Equivalence: distinct cache entries, identical numbers.
            assert scalar_run.total_ns == vector_run.total_ns

    def test_engine_axis_points_get_distinct_keys(self):
        sweep = Sweep(
            {"engine": ["scalar", "vector"]}, base=Simulation("pond").scale(TINY_SCALE)
        )
        _, _, keys = sweep._compile()
        assert len(keys) == 2
        assert keys[0] and keys[1]
        assert keys[0] != keys[1]


class TestWorkerPool:
    """The persistent sweep pool: reuse, rebuild triggers, chunked scheduling."""

    def teardown_method(self):
        from repro.api.sweep import shutdown_worker_pool

        shutdown_worker_pool()

    def test_pool_persists_across_runs(self):
        from repro.api.sweep import shutdown_worker_pool, worker_pool

        shutdown_worker_pool()
        clear_cache()
        base = Simulation("pond").scale(TINY_SCALE)
        Sweep({"batch_size": [2, 4]}, base=base).run(parallel=True, processes=2, cache=False)
        pool = worker_pool()
        assert pool.active()
        first = pool._pool
        Sweep({"batch_size": [2, 4]}, base=Simulation("beacon").scale(TINY_SCALE)).run(
            parallel=True, processes=2, cache=False
        )
        assert pool._pool is first, "second sweep should reuse the live pool"
        shutdown_worker_pool()
        assert not pool.active()

    def test_pool_rebuilt_when_registry_changes(self):
        from repro.api.sweep import shutdown_worker_pool, worker_pool

        shutdown_worker_pool()
        clear_cache()
        base = Simulation("pond").scale(TINY_SCALE)
        Sweep({"batch_size": [2, 4]}, base=base).run(parallel=True, processes=2, cache=False)
        first = worker_pool()._pool
        register_system("pool-generation-probe", PondSystem, replace=True)
        try:
            Sweep({"batch_size": [2, 4]}, base=base).run(
                parallel=True, processes=2, cache=False
            )
            assert worker_pool()._pool is not first, (
                "a registry change must rebuild the forked workers"
            )
        finally:
            unregister_system("pool-generation-probe")

    def test_chunks_group_by_workload_in_first_occurrence_order(self):
        sweep = Sweep(
            {"system": ["pond", "beacon"], "batch_size": [2, 4]},
            base=Simulation().scale(TINY_SCALE),
        )
        tasks = [(sim.spec(), "") for sim, _ in sweep.simulations()]
        chunks = Sweep._chunk_by_workload(tasks)
        # Product order is (pond,2),(pond,4),(beacon,2),(beacon,4): two
        # workloads, each shared by both systems.
        assert [indices for indices, _ in chunks] == [[0, 2], [1, 3]]
        assert all(key for _, key in chunks)

    def test_single_workload_grid_still_occupies_every_worker(self):
        """A systems-only sweep (one shared workload) must not serialize.

        All grid points share one workload key; the scheduler has to split
        the group so each of the workers gets a chunk — every part still
        carrying the same workload key.
        """
        sweep = Sweep(
            {"system": ["pond", "beacon", "recnmp", "pifs-rec"]},
            base=Simulation().scale(TINY_SCALE),
        )
        tasks = [(sim.spec(), "") for sim, _ in sweep.simulations()]
        chunks = Sweep._chunk_by_workload(tasks, workers=4)
        assert len(chunks) == 4
        assert sorted(i for indices, _ in chunks for i in indices) == [0, 1, 2, 3]
        assert len({key for _, key in chunks}) == 1
        # Splitting stops at singletons even when more workers are free.
        assert len(Sweep._chunk_by_workload(tasks, workers=16)) == 4

    def test_parallel_persistent_matches_serial(self):
        from repro.api.sweep import shutdown_worker_pool

        grid = {"system": ["pond", "beacon"], "batch_size": [2, 4]}
        clear_cache()
        serial = Sweep(grid, base=Simulation().scale(TINY_SCALE)).run(parallel=False, cache=False)
        clear_cache()
        shutdown_worker_pool()
        parallel = Sweep(grid, base=Simulation().scale(TINY_SCALE)).run(
            parallel=True, processes=2, cache=False
        )
        assert [r.params for r in serial] == [r.params for r in parallel]
        assert [r.total_ns for r in serial] == [r.total_ns for r in parallel]
