"""Tests for the DRAM substrate (repro.dram)."""

import pytest

from repro.config import CACHE_LINE_BYTES, DDR5_TIMINGS, DRAMConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import Bank, RowBufferResult
from repro.dram.channel import Channel
from repro.dram.controller import DRAMController, MemoryRequest
from repro.dram.device import DRAMDevice


@pytest.fixture
def config():
    return DRAMConfig(channels=2, ranks_per_channel=2, banks_per_rank=4)


class TestAddressMapping:
    def test_decode_fields_in_range(self, config):
        mapping = AddressMapping(config)
        for address in range(0, 1 << 20, 4096 + 64):
            decoded = mapping.decode(address)
            assert 0 <= decoded.channel < config.channels
            assert 0 <= decoded.rank < config.ranks_per_channel
            assert 0 <= decoded.bank < config.banks_per_rank
            assert 0 <= decoded.column < mapping.lines_per_row()

    def test_consecutive_lines_stripe_channels(self, config):
        mapping = AddressMapping(config)
        a = mapping.decode(0)
        b = mapping.decode(CACHE_LINE_BYTES)
        assert a.channel != b.channel

    def test_same_line_same_decode(self, config):
        mapping = AddressMapping(config)
        assert mapping.decode(10) == mapping.decode(63)

    def test_negative_address_rejected(self, config):
        with pytest.raises(ValueError):
            AddressMapping(config).decode(-1)

    def test_bank_key_hashable(self, config):
        decoded = AddressMapping(config).decode(0)
        assert decoded.bank_key == (decoded.channel, decoded.rank, decoded.bank)


class TestBank:
    def test_first_access_is_miss(self):
        bank = Bank(DDR5_TIMINGS)
        access = bank.access(row=3, arrival_ns=0.0)
        assert access.result is RowBufferResult.MISS
        assert bank.misses == 1

    def test_second_access_same_row_hits(self):
        bank = Bank(DDR5_TIMINGS)
        bank.access(row=3, arrival_ns=0.0)
        access = bank.access(row=3, arrival_ns=100.0)
        assert access.result is RowBufferResult.HIT

    def test_conflict_on_other_row(self):
        bank = Bank(DDR5_TIMINGS)
        bank.access(row=3, arrival_ns=0.0)
        access = bank.access(row=7, arrival_ns=100.0)
        assert access.result is RowBufferResult.CONFLICT

    def test_hit_is_fastest(self):
        timings = DDR5_TIMINGS
        hit_bank, miss_bank, conflict_bank = Bank(timings), Bank(timings), Bank(timings)
        hit_bank.access(row=1, arrival_ns=0.0)
        conflict_bank.access(row=2, arrival_ns=0.0)
        t0 = 1000.0
        hit = hit_bank.access(1, t0).ready_ns - t0
        miss = miss_bank.access(1, t0).ready_ns - t0
        conflict = conflict_bank.access(1, t0).ready_ns - t0
        assert hit < miss < conflict

    def test_back_to_back_accesses_serialize(self):
        bank = Bank(DDR5_TIMINGS)
        first = bank.access(row=1, arrival_ns=0.0)
        second = bank.access(row=1, arrival_ns=0.0)
        assert second.start_ns >= first.ready_ns

    def test_precharge_closes_row(self):
        bank = Bank(DDR5_TIMINGS)
        bank.access(row=1, arrival_ns=0.0)
        bank.precharge()
        assert bank.open_row is None
        assert bank.access(row=1, arrival_ns=100.0).result is RowBufferResult.MISS

    def test_reset(self):
        bank = Bank(DDR5_TIMINGS)
        bank.access(row=1, arrival_ns=0.0)
        bank.reset()
        assert bank.hits == bank.misses == bank.conflicts == 0
        assert bank.next_ready_ns == 0.0


class TestChannel:
    def test_access_returns_increasing_time(self, config):
        channel = Channel(config)
        t1 = channel.access(rank=0, bank=0, row=0, arrival_ns=0.0)
        t2 = channel.access(rank=0, bank=1, row=0, arrival_ns=0.0)
        assert t1 > 0
        assert t2 >= t1  # shared data bus serializes the bursts

    def test_bytes_transferred_accumulates(self, config):
        channel = Channel(config)
        channel.access(0, 0, 0, 0.0, bytes_requested=256)
        assert channel.bytes_transferred == 256

    def test_utilization_bounded(self, config):
        channel = Channel(config)
        for i in range(32):
            channel.access(0, i % config.banks_per_rank, i, float(i))
        assert 0.0 < channel.utilization(channel.bus_free_ns) <= 1.0

    def test_reset(self, config):
        channel = Channel(config)
        channel.access(0, 0, 0, 0.0)
        channel.reset()
        assert channel.bytes_transferred == 0
        assert channel.bus_free_ns == 0.0


class TestController:
    def test_latency_positive(self, config):
        controller = DRAMController(config)
        response = controller.service(MemoryRequest(address=0, arrival_ns=0.0))
        assert response.latency_ns > 0

    def test_sequential_stream_gets_row_hits(self, config):
        controller = DRAMController(config)
        for i in range(256):
            controller.access(i * CACHE_LINE_BYTES, arrival_ns=i * 5.0)
        assert controller.row_buffer_hit_rate() > 0.5

    def test_average_latency_tracks_requests(self, config):
        controller = DRAMController(config)
        assert controller.average_latency_ns() == 0.0
        controller.access(0, 0.0)
        assert controller.average_latency_ns() > 0.0
        assert controller.requests == 1

    def test_parallel_banks_faster_than_same_bank(self, config):
        same_bank = DRAMController(config)
        spread = DRAMController(config)
        # Row-conflicting stream to a single bank vs striped across banks.
        row_stride = config.row_size_bytes * config.channels * config.ranks_per_channel * config.banks_per_rank
        bank_stride = config.row_size_bytes * config.channels
        same_finish = max(same_bank.access(i * row_stride, 0.0) for i in range(16))
        spread_finish = max(spread.access(i * bank_stride, 0.0) for i in range(16))
        assert spread_finish < same_finish


class TestDevice:
    def test_stats(self, config):
        device = DRAMDevice(config)
        device.access(0, 0.0)
        device.access(CACHE_LINE_BYTES, 10.0)
        stats = device.stats()
        assert stats.requests == 2
        assert stats.bytes_transferred >= 2 * CACHE_LINE_BYTES
        assert stats.average_latency_ns > 0

    def test_bandwidth_computation(self, config):
        device = DRAMDevice(config)
        device.access(0, 0.0, bytes_requested=1024)
        assert device.stats().bandwidth_gbps(100.0) == pytest.approx(1024 / 100.0)

    def test_reset(self, config):
        device = DRAMDevice(config)
        device.access(0, 0.0)
        device.reset()
        assert device.stats().requests == 0
