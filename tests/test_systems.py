"""Integration tests: every SLS system runs a workload and the paper's
qualitative ordering holds."""

import pytest

from repro.baselines import SYSTEM_FACTORIES, create_system
from repro.baselines.beacon import BeaconSystem
from repro.baselines.pond import PondSystem
from repro.baselines.recnmp import RecNMPSystem
from repro.pifs.system import PIFSRecNoPM, PIFSRecSystem
from repro.sls.result import SimResult


@pytest.fixture(scope="module")
def results(tiny_workload, tiny_system):
    out = {}
    for name in ("pond", "pond+pm", "beacon", "recnmp", "tpp", "pifs-rec", "pifs-rec-nopm"):
        out[name] = create_system(name, tiny_system).run(tiny_workload)
    return out


class TestRegistry:
    def test_all_factories_constructible(self, tiny_system):
        for name in SYSTEM_FACTORIES:
            system = create_system(name, tiny_system)
            assert hasattr(system, "run")

    def test_unknown_name(self, tiny_system):
        with pytest.raises(KeyError):
            create_system("magic", tiny_system)


class TestEverySystemRuns:
    @pytest.mark.parametrize(
        "name", ["pond", "pond+pm", "beacon", "recnmp", "tpp", "pifs-rec", "pifs-rec-nopm"]
    )
    def test_produces_valid_result(self, results, tiny_workload, name):
        result = results[name]
        assert isinstance(result, SimResult)
        assert result.total_ns > 0
        assert result.requests == len(tiny_workload.requests)
        assert result.lookups == tiny_workload.total_lookups
        assert result.local_rows + result.cxl_rows + result.remote_socket_rows >= result.lookups * 0.99

    def test_latency_per_lookup_positive(self, results):
        for result in results.values():
            assert result.latency_per_lookup_ns > 0
            assert result.throughput_lookups_per_us > 0


class TestPaperOrdering:
    def test_pifs_beats_pond(self, results):
        assert results["pifs-rec"].total_ns < results["pond"].total_ns

    def test_pifs_beats_pond_pm(self, results):
        assert results["pifs-rec"].total_ns < results["pond+pm"].total_ns

    def test_pifs_beats_beacon(self, results):
        assert results["pifs-rec"].total_ns < results["beacon"].total_ns

    def test_pifs_speedup_over_pond_substantial(self, results):
        # The paper reports 3.8-3.9x; the scaled-down run must preserve a
        # clearly-better-than-2x advantage.
        assert results["pifs-rec"].speedup_over(results["pond"]) > 2.0

    def test_recnmp_is_the_closest_baseline(self, results):
        others = {k: v.total_ns for k, v in results.items() if k in ("pond", "pond+pm", "beacon", "recnmp")}
        assert min(others, key=others.get) == "recnmp"

    def test_recnmp_within_band_of_pifs(self, results):
        ratio = results["recnmp"].total_ns / results["pifs-rec"].total_ns
        assert 0.6 < ratio < 2.5

    def test_page_management_helps_pifs(self, results):
        assert results["pifs-rec"].total_ns <= results["pifs-rec-nopm"].total_ns * 1.05


class TestSystemBehaviours:
    def test_pond_has_no_in_switch_activity(self, results):
        assert results["pond"].buffer_hits == 0
        assert results["pond"].migrations == 0

    def test_pond_pm_migrates(self, results):
        assert results["pond+pm"].migrations > 0
        assert results["pond+pm"].migration_cost_ns > 0

    def test_beacon_places_everything_on_cxl(self, results):
        assert results["beacon"].local_rows == 0
        assert results["beacon"].cxl_rows == results["beacon"].lookups

    def test_beacon_moves_no_row_data_to_host(self, results):
        assert results["beacon"].bytes_to_host == 0

    def test_pond_moves_cxl_rows_to_host(self, results, tiny_workload):
        pond = results["pond"]
        assert pond.bytes_to_host == pond.cxl_rows * tiny_workload.model.embedding_row_bytes

    def test_pifs_uses_on_switch_buffer(self, results):
        pifs = results["pifs-rec-nopm"]
        assert pifs.buffer_hits + pifs.buffer_misses == pifs.cxl_rows

    def test_recnmp_uses_rank_cache(self, results):
        recnmp = results["recnmp"]
        assert recnmp.buffer_hits + recnmp.buffer_misses > 0

    def test_device_access_counts_cover_cxl_rows(self, results):
        pifs = results["pifs-rec"]
        assert sum(pifs.device_access_counts.values()) >= pifs.buffer_misses


class TestMultiConfiguration:
    def test_more_devices_do_not_hurt_pifs(self, tiny_workload, tiny_system):
        from dataclasses import replace

        few = PIFSRecSystem(replace(tiny_system, num_cxl_devices=1)).run(tiny_workload)
        many = PIFSRecSystem(replace(tiny_system, num_cxl_devices=8)).run(tiny_workload)
        assert many.total_ns <= few.total_ns * 1.05

    def test_larger_local_dram_helps_pond(self, tiny_workload, tiny_system):
        from dataclasses import replace

        small = PondSystem(tiny_system).run(tiny_workload)
        large = PondSystem(
            replace(tiny_system, local_dram_capacity_bytes=tiny_workload.address_space.total_bytes * 2)
        ).run(tiny_workload)
        assert large.total_ns < small.total_ns

    def test_multi_switch_pifs_runs(self, tiny_workload, tiny_system):
        from dataclasses import replace

        cfg = replace(tiny_system, num_fabric_switches=2, num_cxl_devices=4, num_hosts=2)
        result = PIFSRecSystem(cfg).run(tiny_workload)
        assert result.total_ns > 0

    def test_results_are_deterministic(self, tiny_workload, tiny_system):
        a = PIFSRecSystem(tiny_system).run(tiny_workload)
        b = PIFSRecSystem(tiny_system).run(tiny_workload)
        assert a.total_ns == pytest.approx(b.total_ns)

    def test_sim_result_validation(self):
        with pytest.raises(ValueError):
            SimResult(system="x", total_ns=-1.0, requests=0, lookups=0)

    def test_speedup_over(self, results):
        assert results["pifs-rec"].speedup_over(results["pond"]) == pytest.approx(
            results["pond"].total_ns / results["pifs-rec"].total_ns
        )
