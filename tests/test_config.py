"""Tests for repro.config."""

import pytest

from repro.config import (
    DDR4_TIMINGS,
    DDR5_TIMINGS,
    MODEL_CONFIGS,
    RMC1,
    RMC2,
    RMC3,
    RMC4,
    DRAMConfig,
    CXLConfig,
    PIFSConfig,
    SystemConfig,
    WorkloadConfig,
    scaled_model,
)


class TestDRAMTimings:
    def test_table2_ddr5_values(self):
        t = DDR5_TIMINGS
        assert (t.cl, t.trcd, t.trp, t.tras) == (28, 28, 28, 52)
        assert (t.trc, t.twr, t.trtp) == (79, 48, 12)
        assert (t.tcwl, t.nrfc1, t.tck_ps) == (22, 30, 625)

    def test_tck_ns(self):
        assert DDR5_TIMINGS.tck_ns == pytest.approx(0.625)

    def test_cycles_to_ns(self):
        assert DDR5_TIMINGS.cycles_to_ns(2) == pytest.approx(1.25)

    def test_row_hit_faster_than_conflict(self):
        assert DDR5_TIMINGS.row_hit_cycles < DDR5_TIMINGS.row_closed_cycles
        assert DDR5_TIMINGS.row_closed_cycles < DDR5_TIMINGS.row_conflict_cycles

    def test_ddr4_slower_clock(self):
        assert DDR4_TIMINGS.tck_ps > DDR5_TIMINGS.tck_ps


class TestDRAMConfig:
    def test_capacity(self):
        cfg = DRAMConfig(channels=4, dimm_capacity_bytes=64 * 1024 ** 3)
        assert cfg.capacity_bytes == 4 * 64 * 1024 ** 3

    def test_total_banks(self):
        cfg = DRAMConfig(channels=2, ranks_per_channel=2, banks_per_rank=16)
        assert cfg.total_banks == 64

    def test_peak_bandwidth(self):
        cfg = DRAMConfig(channels=4, channel_bandwidth_gbps=38.4)
        assert cfg.peak_bandwidth_gbps == pytest.approx(153.6)


class TestModelConfigs:
    @pytest.mark.parametrize("name", ["RMC1", "RMC2", "RMC3", "RMC4"])
    def test_registry(self, name):
        assert MODEL_CONFIGS[name].name == name

    def test_table1_embedding_counts(self):
        assert RMC1.num_embeddings == 16384
        assert RMC2.num_embeddings == 131072
        assert RMC3.num_embeddings == 1048576
        assert RMC4.num_embeddings == 1048576

    def test_table1_dimensions(self):
        assert RMC1.embedding_dim == RMC2.embedding_dim == RMC3.embedding_dim == 64
        assert RMC4.embedding_dim == 128

    def test_table1_mlps(self):
        assert RMC1.bottom_mlp == (256, 128, 128)
        assert RMC4.top_mlp == (768, 384, 1)

    def test_row_bytes(self):
        assert RMC1.embedding_row_bytes == 256
        assert RMC4.embedding_row_bytes == 512

    def test_footprint_ordering(self):
        assert RMC1.total_embedding_bytes < RMC2.total_embedding_bytes
        assert RMC2.total_embedding_bytes < RMC3.total_embedding_bytes
        assert RMC3.total_embedding_bytes < RMC4.total_embedding_bytes

    def test_scaled_model(self):
        scaled = scaled_model(RMC3, 0.01)
        assert scaled.num_embeddings == int(RMC3.num_embeddings * 0.01)
        assert scaled.embedding_dim == RMC3.embedding_dim

    def test_scaled_model_never_empty(self):
        assert scaled_model(RMC1, 1e-9).num_embeddings == 1


class TestSystemConfig:
    def test_defaults_match_table2(self):
        cfg = SystemConfig()
        assert cfg.cxl.access_penalty_ns == pytest.approx(100.0)
        assert cfg.cxl.downstream_port_bandwidth_gbps == pytest.approx(64.0)
        assert cfg.local_dram_capacity_bytes == 128 * 1024 ** 3

    def test_pifs_defaults(self):
        pifs = PIFSConfig()
        assert pifs.process_core is True
        assert pifs.out_of_order is True
        assert pifs.on_switch_buffer.capacity_bytes == 512 * 1024
        assert pifs.on_switch_buffer.policy == "htr"

    def test_page_mgmt_defaults(self):
        cfg = SystemConfig().page_mgmt
        assert cfg.migrate_threshold == pytest.approx(0.35)
        assert cfg.cold_age_threshold == pytest.approx(0.16)
        assert cfg.migration_mode == "cacheline_block"

    def test_workload_defaults(self):
        wl = WorkloadConfig()
        assert wl.batch_size == 8
        assert wl.distribution == "meta"

    def test_cxl_config_slots(self):
        cxl = CXLConfig()
        assert cxl.slot_bytes == 16
        assert cxl.flit_bytes == 64
