"""Tests for the DLRM pipeline (repro.dlrm)."""

import numpy as np
import pytest

from repro.config import RMC1, scaled_model
from repro.dlrm.embedding import EmbeddingBagCollection, EmbeddingTable
from repro.dlrm.interaction import dot_feature_interaction, interaction_output_dim
from repro.dlrm.mlp import MLP
from repro.dlrm.model import DLRM, OperatorProfile, operator_profile
from repro.dlrm.query import QueryBatch


class TestEmbeddingTable:
    def test_lookup_matches_weights(self):
        table = EmbeddingTable(num_embeddings=100, dim=8, table_id=1)
        rows = table.lookup([3, 7])
        np.testing.assert_array_equal(rows, table.weights[[3, 7]])

    def test_sls_sums_bags(self):
        table = EmbeddingTable(50, 4)
        indices = [1, 2, 3, 4, 5]
        offsets = [0, 2]
        pooled = table.sls(indices, offsets)
        np.testing.assert_allclose(pooled[0], table.weights[[1, 2]].sum(axis=0), rtol=1e-6)
        np.testing.assert_allclose(pooled[1], table.weights[[3, 4, 5]].sum(axis=0), rtol=1e-6)

    def test_sls_with_weights(self):
        table = EmbeddingTable(50, 4)
        pooled = table.sls([1, 2], [0], weights=[0.5, 2.0])
        expected = 0.5 * table.weights[1] + 2.0 * table.weights[2]
        np.testing.assert_allclose(pooled[0], expected, rtol=1e-6)

    def test_empty_bag_is_zero(self):
        table = EmbeddingTable(50, 4)
        pooled = table.sls([1], [0, 1])  # second bag empty
        np.testing.assert_array_equal(pooled[1], np.zeros(4, dtype=np.float32))

    def test_index_out_of_range(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(IndexError):
            table.sls([10], [0])

    def test_offsets_must_start_at_zero(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ValueError):
            table.sls([1, 2], [1])

    def test_offsets_must_be_sorted(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ValueError):
            table.sls([1, 2, 3], [0, 2, 1])

    def test_non_materialized_rejects_lookup(self):
        table = EmbeddingTable(10, 4, materialize=False)
        with pytest.raises(RuntimeError):
            table.lookup([0])

    def test_weights_misaligned(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ValueError):
            table.sls([1, 2], [0], weights=[1.0])

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            EmbeddingTable(0, 4)


class TestEmbeddingBagCollection:
    def test_build(self):
        collection = EmbeddingBagCollection.build(num_tables=3, num_embeddings=20, dim=8)
        assert len(collection) == 3
        assert collection.total_bytes == 3 * 20 * 8 * 4

    def test_sls_shape(self):
        collection = EmbeddingBagCollection.build(2, 20, 8)
        pooled = collection.sls([[1, 2, 3], [4, 5]], [[0, 2], [0, 1]])
        assert pooled.shape == (2, 2, 8)

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingBagCollection([EmbeddingTable(10, 4), EmbeddingTable(10, 8)])

    def test_mismatched_table_count(self):
        collection = EmbeddingBagCollection.build(2, 20, 8)
        with pytest.raises(ValueError):
            collection.sls([[1]], [[0]])


class TestMLP:
    def test_output_shape(self):
        mlp = MLP(input_dim=13, layer_sizes=(32, 8))
        out = mlp(np.zeros((4, 13), dtype=np.float32))
        assert out.shape == (4, 8)

    def test_sigmoid_output_bounded(self):
        mlp = MLP(4, (8, 1), sigmoid_output=True)
        out = mlp(np.random.default_rng(0).normal(size=(16, 4)))
        assert np.all(out > 0) and np.all(out < 1)

    def test_relu_output_non_negative(self):
        mlp = MLP(4, (8,))
        out = mlp(np.random.default_rng(0).normal(size=(16, 4)))
        assert np.all(out >= 0)

    def test_1d_input_promoted(self):
        mlp = MLP(4, (2,))
        assert mlp(np.zeros(4, dtype=np.float32)).shape == (1, 2)

    def test_wrong_input_dim(self):
        mlp = MLP(4, (2,))
        with pytest.raises(ValueError):
            mlp(np.zeros((1, 5), dtype=np.float32))

    def test_parameter_count(self):
        mlp = MLP(4, (8, 2))
        assert mlp.num_parameters == (4 * 8 + 8) + (8 * 2 + 2)

    def test_flops_positive(self):
        assert MLP(4, (8, 2)).flops_per_sample() == 2 * (4 * 8 + 8 * 2)


class TestInteraction:
    def test_output_dim(self):
        dense = np.zeros((3, 8), dtype=np.float32)
        sparse = np.zeros((3, 4, 8), dtype=np.float32)
        out = dot_feature_interaction(dense, sparse)
        assert out.shape == (3, interaction_output_dim(4, 8))

    def test_contains_dense_passthrough(self):
        dense = np.arange(8, dtype=np.float32)[None, :]
        sparse = np.zeros((1, 2, 8), dtype=np.float32)
        out = dot_feature_interaction(dense, sparse)
        np.testing.assert_array_equal(out[0, :8], dense[0])

    def test_dot_products_correct(self):
        dense = np.ones((1, 2), dtype=np.float32)
        sparse = np.full((1, 1, 2), 2.0, dtype=np.float32)
        out = dot_feature_interaction(dense, sparse)
        # single pair: dense . sparse = 4
        assert out[0, -1] == pytest.approx(4.0)

    def test_batch_mismatch(self):
        with pytest.raises(ValueError):
            dot_feature_interaction(np.zeros((2, 4)), np.zeros((3, 1, 4)))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            dot_feature_interaction(np.zeros((2, 4)), np.zeros((2, 1, 8)))


class TestQueryBatch:
    def test_random_batch_consistent(self):
        batch = QueryBatch.random(batch_size=8, num_tables=3, num_embeddings=100)
        assert batch.batch_size == 8
        assert batch.num_tables == 3
        assert batch.total_lookups == sum(len(i) for i in batch.indices_per_table)
        assert batch.pooling_factor() > 0

    def test_offsets_validation(self):
        with pytest.raises(ValueError):
            QueryBatch(
                dense=np.zeros((2, 4), dtype=np.float32),
                indices_per_table=[np.array([1, 2])],
                offsets_per_table=[np.array([1, 2])],
            )

    def test_reproducible(self):
        a = QueryBatch.random(4, 2, 50, seed=3)
        b = QueryBatch.random(4, 2, 50, seed=3)
        np.testing.assert_array_equal(a.indices_per_table[0], b.indices_per_table[0])


class TestDLRM:
    @pytest.fixture(scope="class")
    def model(self):
        config = scaled_model(RMC1, 0.02)  # 327 rows
        return DLRM(config, seed=1)

    def test_forward_shape_and_range(self, model):
        batch = QueryBatch.random(
            batch_size=6,
            num_tables=model.config.num_tables,
            num_embeddings=model.config.num_embeddings,
            seed=5,
        )
        ctr = model(batch)
        assert ctr.shape == (6, 1)
        assert np.all((ctr > 0) & (ctr < 1))

    def test_table_count_mismatch(self, model):
        batch = QueryBatch.random(2, model.config.num_tables + 1, 10)
        with pytest.raises(ValueError):
            model(batch)

    def test_parameter_counts(self, model):
        counts = model.parameter_counts()
        assert counts["embeddings"] == (
            model.config.num_tables * model.config.num_embeddings * model.config.embedding_dim
        )
        assert counts["bottom_mlp"] > 0 and counts["top_mlp"] > 0

    def test_bottom_mlp_projects_to_embedding_dim(self, model):
        assert model.bottom_mlp.output_dim == model.config.embedding_dim


class TestOperatorProfile:
    def test_fractions_sum_to_one(self):
        profile = operator_profile(RMC1, batch_size=8)
        assert profile.sls_fraction + profile.non_sls_fraction == pytest.approx(1.0)

    def test_sls_fraction_grows_with_batch(self):
        small = operator_profile(RMC2 := RMC1, 8)
        large = operator_profile(RMC2, 256)
        assert large.sls_fraction > small.sls_fraction

    def test_end_to_end_speedup_amdahl(self):
        profile = OperatorProfile(sls_fraction=0.8, non_sls_fraction=0.2)
        assert profile.end_to_end_speedup(1.0) == pytest.approx(1.0)
        assert profile.end_to_end_speedup(1e9) == pytest.approx(5.0, rel=1e-3)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            OperatorProfile(sls_fraction=0.5, non_sls_fraction=0.6)

    def test_invalid_speedup(self):
        profile = operator_profile(RMC1, 8)
        with pytest.raises(ValueError):
            profile.end_to_end_speedup(0.0)
