"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import min_max_normalize, standard_deviation
from repro.config import BufferConfig, PIFSConfig
from repro.cxl.link import CXLLink
from repro.dlrm.embedding import EmbeddingTable
from repro.memsys.address_space import AddressSpace
from repro.memsys.hotness import AccessTracker
from repro.pifs.instructions import VECTOR_SIZE_BYTES, decode_vector_size, encode_vector_size
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.pifs.ooo import OutOfOrderAccumulator


# ----------------------------------------------------------------------
# SLS correctness against a straightforward numpy reference
# ----------------------------------------------------------------------
@st.composite
def sls_inputs(draw):
    num_embeddings = draw(st.integers(min_value=4, max_value=64))
    dim = draw(st.sampled_from([4, 8, 16]))
    bags = draw(st.integers(min_value=1, max_value=5))
    lengths = draw(st.lists(st.integers(min_value=0, max_value=6), min_size=bags, max_size=bags))
    total = sum(lengths)
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=num_embeddings - 1), min_size=total, max_size=total)
    )
    return num_embeddings, dim, lengths, indices


@given(sls_inputs())
@settings(max_examples=60, deadline=None)
def test_sls_matches_reference(data):
    num_embeddings, dim, lengths, indices = data
    table = EmbeddingTable(num_embeddings, dim, table_id=1)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
    pooled = table.sls(indices, offsets)
    cursor = 0
    for bag, length in enumerate(lengths):
        expected = np.zeros(dim, dtype=np.float64)
        for idx in indices[cursor : cursor + length]:
            expected += table.weights[idx]
        cursor += length
        np.testing.assert_allclose(pooled[bag], expected, rtol=1e-4, atol=1e-5)


# ----------------------------------------------------------------------
# Address-space round trip
# ----------------------------------------------------------------------
@given(
    num_tables=st.integers(min_value=1, max_value=8),
    num_embeddings=st.integers(min_value=1, max_value=5000),
    row_bytes=st.sampled_from([16, 32, 64, 128, 256, 512]),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_address_space_roundtrip(num_tables, num_embeddings, row_bytes, data):
    space = AddressSpace(num_tables=num_tables, num_embeddings=num_embeddings, row_bytes=row_bytes)
    table = data.draw(st.integers(min_value=0, max_value=num_tables - 1))
    row = data.draw(st.integers(min_value=0, max_value=num_embeddings - 1))
    address = space.row_address(table, row)
    assert 0 <= address < space.total_bytes
    assert space.locate(address) == (table, row)


@given(
    num_tables=st.integers(min_value=1, max_value=4),
    num_embeddings=st.integers(min_value=1, max_value=1000),
    row_bytes=st.sampled_from([16, 64, 256]),
)
@settings(max_examples=40, deadline=None)
def test_address_space_tables_never_overlap(num_tables, num_embeddings, row_bytes):
    space = AddressSpace(num_tables=num_tables, num_embeddings=num_embeddings, row_bytes=row_bytes)
    last_of_table = space.row_address(0, num_embeddings - 1) + row_bytes - 1
    if num_tables > 1:
        first_of_next = space.row_address(1, 0)
        assert first_of_next > last_of_table


# ----------------------------------------------------------------------
# On-switch buffer invariants
# ----------------------------------------------------------------------
@given(
    policy=st.sampled_from(["htr", "lru", "fifo"]),
    capacity_rows=st.integers(min_value=1, max_value=16),
    accesses=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_buffer_occupancy_and_counters(policy, capacity_rows, accesses):
    row_bytes = 64
    buf = OnSwitchBuffer(
        BufferConfig(policy=policy, capacity_bytes=capacity_rows * row_bytes, htr_interval=32),
        row_bytes,
    )
    for row in accesses:
        hit = buf.lookup(row * row_bytes)
        if not hit:
            buf.insert(row * row_bytes)
    assert buf.occupancy <= capacity_rows
    assert buf.hits + buf.misses == len(accesses)
    assert 0.0 <= buf.hit_ratio() <= 1.0


# ----------------------------------------------------------------------
# Link and accumulator monotonicity
# ----------------------------------------------------------------------
@given(
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4096),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_link_time_is_monotonic_and_conserves_bytes(transfers):
    link = CXLLink(bandwidth_gbps=32.0, propagation_ns=5.0)
    last_busy = 0.0
    total_bytes = 0
    for size, start in transfers:
        finish = link.transfer(size, start)
        assert finish >= start + 5.0
        assert link.busy_until_ns >= last_busy
        last_busy = link.busy_until_ns
        total_bytes += size
    assert link.bytes_transferred == total_bytes


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_accumulator_counts_every_element(sumtags):
    acc = OutOfOrderAccumulator(PIFSConfig())
    total_ns = 0.0
    for sumtag in sumtags:
        busy = acc.accumulate_element(sumtag)
        assert busy > 0
        total_ns += busy
    assert acc.stats.elements == len(sumtags)
    assert acc.stats.busy_cycles > 0
    assert total_ns >= len(sumtags) * acc.cycle_ns * PIFSConfig().accumulate_cycles_per_element


# ----------------------------------------------------------------------
# Instruction encoding and stats helpers
# ----------------------------------------------------------------------
@given(st.sampled_from(sorted(VECTOR_SIZE_BYTES.values())))
def test_vector_size_encoding_roundtrip(row_bytes):
    assert decode_vector_size(encode_vector_size(row_bytes)) == row_bytes


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_min_max_normalize_properties(values):
    normalized = min_max_normalize(values)
    assert set(normalized) == set(values)
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in normalized.values())
    if max(values.values()) > 0:
        assert max(normalized.values()) == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_standard_deviation_non_negative(values):
    assert standard_deviation(values) >= 0.0


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=5)),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_access_tracker_total_is_sum(records):
    tracker = AccessTracker()
    for key, weight in records:
        tracker.record(key, weight)
    assert tracker.total == sum(weight for _, weight in records)
    hottest_key, hottest_count = tracker.hottest(1)[0]
    assert hottest_count == max(tracker.count(k) for k in tracker.keys())
