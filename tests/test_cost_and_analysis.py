"""Tests for the cost/power/energy models and the analysis helpers."""

import pytest

from repro.analysis.report import format_mapping, format_table
from repro.analysis.stats import (
    geometric_mean,
    min_max_normalize,
    normalize_to,
    speedup,
    standard_deviation,
)
from repro.baselines.gpu_ps import GPUParameterServer
from repro.config import MODEL_CONFIGS, RMC1, RMC4
from repro.cost.energy import EnergyModel
from repro.cost.hardware_specs import HARDWARE_SPECS, spec
from repro.cost.power_area import PIFS_BREAKDOWN, RECNMP_X8, PowerAreaModel
from repro.cost.tco import TCOModel
from repro.sls.result import SimResult


class TestHardwareSpecs:
    def test_table3_prices(self):
        assert spec("server_cpu").price_usd == pytest.approx(4695.0)
        assert spec("gpu").price_usd == pytest.approx(18900.0)
        assert spec("ddr5_dimm").price_usd == pytest.approx(11.25)
        assert spec("ddr4_dimm").price_usd == pytest.approx(4.90)

    def test_unknown_spec(self):
        with pytest.raises(KeyError):
            spec("quantum_dimm")

    def test_all_specs_well_formed(self):
        for hardware in HARDWARE_SPECS.values():
            assert hardware.tdp_watts > 0
            assert hardware.price_usd > 0


class TestPowerArea:
    def test_fig18_component_values(self):
        assert PIFS_BREAKDOWN["process_core"].power_mw == pytest.approx(9.3)
        assert PIFS_BREAKDOWN["control_logic"].area_um2 == pytest.approx(73114.0)
        assert PIFS_BREAKDOWN["on_switch_buffer"].area_mm2 == pytest.approx(2.38)

    def test_power_reduction_matches_paper(self):
        model = PowerAreaModel()
        assert model.power_reduction_vs_recnmp() == pytest.approx(2.7, rel=0.05)

    def test_area_reduction_matches_paper(self):
        model = PowerAreaModel()
        assert model.area_reduction_vs_recnmp() == pytest.approx(2.02, rel=0.05)

    def test_recnmp_reference(self):
        assert RECNMP_X8.power_mw == pytest.approx(75.4)


class TestTCO:
    def test_pifs_cheaper_than_gpu_systems(self):
        tco = TCOModel(RMC4)
        reports = tco.comparison()
        assert reports["Ours"].total_usd < min(
            reports[key].total_usd for key in reports if key != "Ours"
        )

    def test_cost_advantage_band(self):
        # The paper reports 3.38x (RMC1) .. 2.53x (RMC4) vs a 1-GPU server.
        small = TCOModel(RMC1).cost_advantage(num_gpus=1)
        large = TCOModel(RMC4).cost_advantage(num_gpus=1)
        assert 1.5 < large < 4.0
        assert 1.5 < small < 5.0

    def test_capex_grows_with_gpus(self):
        tco = TCOModel(RMC4)
        assert tco.gpu_parameter_server(4).capex_usd > tco.gpu_parameter_server(2).capex_usd

    def test_opex_positive(self):
        report = TCOModel(RMC2 := MODEL_CONFIGS["RMC2"]).pifs_rec()
        assert report.opex_usd > 0
        assert report.total_usd == pytest.approx(report.capex_usd + report.opex_usd)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TCOModel(RMC4).gpu_parameter_server(0)
        with pytest.raises(ValueError):
            TCOModel(RMC4).pifs_rec(cxl_fraction=2.0)


class TestGPUParameterServer:
    def test_small_model_fits_in_hbm(self):
        ps = GPUParameterServer(2, RMC1)
        assert ps.hbm_resident_fraction == pytest.approx(1.0)

    def test_large_model_overflows(self):
        ps = GPUParameterServer(4, RMC4)
        assert ps.hbm_resident_fraction < 0.2

    def test_throughput_drops_with_model_size(self):
        small = GPUParameterServer(4, RMC1).throughput_queries_per_us()
        large = GPUParameterServer(4, RMC4).throughput_queries_per_us()
        assert large < small

    def test_more_gpus_more_throughput(self):
        two = GPUParameterServer(2, RMC4).throughput_queries_per_us()
        four = GPUParameterServer(4, RMC4).throughput_queries_per_us()
        assert four > two

    def test_power(self):
        assert GPUParameterServer(4, RMC4).power_watts() == pytest.approx(360 + 4 * 300)

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            GPUParameterServer(0, RMC1)


class TestEnergyModel:
    def _result(self, system="PIFS-Rec", local=1000, cxl=500):
        return SimResult(
            system=system, total_ns=1e6, requests=100, lookups=local + cxl,
            local_rows=local, cxl_rows=cxl,
        )

    def test_breakdown_components_positive(self):
        breakdown = EnergyModel().breakdown(self._result())
        assert breakdown.dram_mj > 0
        assert breakdown.cxl_mj > 0
        assert breakdown.total_mj == pytest.approx(
            breakdown.dram_mj + breakdown.cxl_mj + breakdown.switch_logic_mj + breakdown.host_mj
        )

    def test_in_switch_flag_controls_host_energy(self):
        model = EnergyModel()
        in_switch = model.breakdown(self._result(), in_switch=True)
        host_side = model.breakdown(self._result(), in_switch=False)
        assert host_side.host_mj > in_switch.host_mj

    def test_savings_positive_when_faster_and_leaner(self):
        model = EnergyModel()
        pifs = self._result()
        pond = SimResult(system="Pond", total_ns=4e6, requests=100, lookups=1500,
                         local_rows=300, cxl_rows=1200)
        assert model.savings_vs(pifs, pond) > 0


class TestStats:
    def test_min_max_normalize(self):
        normalized = min_max_normalize({"a": 2.0, "b": 4.0})
        assert normalized == {"a": 0.5, "b": 1.0}

    def test_min_max_empty_and_zero(self):
        assert min_max_normalize({}) == {}
        assert min_max_normalize({"a": 0.0}) == {"a": 0.0}

    def test_normalize_to(self):
        assert normalize_to({"a": 2.0, "b": 4.0}, "a") == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "z")

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ZeroDivisionError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_standard_deviation(self):
        assert standard_deviation([2.0, 2.0, 2.0]) == 0.0
        assert standard_deviation([0.0, 2.0]) == pytest.approx(1.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["long-name", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_format_mapping(self):
        text = format_mapping("title", {"x": 1.0})
        assert text.startswith("title")
        assert "x: 1.000" in text
