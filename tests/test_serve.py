"""Tests for the online serving subsystem (:mod:`repro.serve`)."""

import json
import math
from dataclasses import FrozenInstanceError, replace

import numpy as np
import pytest

from repro.api.session import Simulation
from repro.serve import (
    AdmissionQueue,
    BatchPolicy,
    DynamicBatcher,
    ServeConfig,
    ServeResult,
    UnknownArrivalError,
    arrival_process,
    available_arrivals,
    serve,
)
from repro.serve.metrics import sla_sweep
from repro.sls.result import LatencyStats, SimResult, percentile

ARRIVAL_NAMES = ("constant", "poisson", "bursty", "mmpp", "diurnal")


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------
class TestArrivals:
    @pytest.mark.parametrize("name", ARRIVAL_NAMES)
    def test_seeded_schedules_are_byte_identical(self, name):
        process = arrival_process(name)
        first = process.arrival_times_ns(512, 2e5, seed=97)
        second = process.arrival_times_ns(512, 2e5, seed=97)
        assert first.dtype == np.int64
        assert first.tobytes() == second.tobytes()

    @pytest.mark.parametrize("name", [n for n in ARRIVAL_NAMES if n != "constant"])
    def test_different_seed_changes_schedule(self, name):
        process = arrival_process(name)
        assert not np.array_equal(
            process.arrival_times_ns(256, 2e5, seed=1),
            process.arrival_times_ns(256, 2e5, seed=2),
        )

    @pytest.mark.parametrize("name", ARRIVAL_NAMES)
    def test_schedules_are_monotone_and_non_negative(self, name):
        times = arrival_process(name).arrival_times_ns(512, 1e5, seed=3)
        assert len(times) == 512
        assert times[0] >= 0
        assert (np.diff(times) >= 0).all()

    @pytest.mark.parametrize("name", ARRIVAL_NAMES)
    def test_long_run_rate_tracks_target_qps(self, name):
        times = arrival_process(name).arrival_times_ns(20_000, 1e5, seed=5)
        mean_gap_ns = float(times[-1]) / len(times)
        # 10 us target gap; bursty/diurnal have heavy correlations, so the
        # tolerance is loose but still rules out rate-balance bugs (a
        # request-count-weighted MMPP lands at ~2x the target gap).
        assert 0.7 <= mean_gap_ns / 10_000.0 <= 1.4

    def test_constant_is_perfectly_paced(self):
        times = arrival_process("constant").arrival_times_ns(10, 1e6, seed=0)
        assert np.array_equal(times, np.arange(1, 11) * 1000)

    def test_empty_and_invalid_inputs(self):
        process = arrival_process("poisson")
        assert len(process.arrival_times_ns(0, 1e5, seed=1)) == 0
        with pytest.raises(ValueError):
            process.arrival_times_ns(10, 0.0, seed=1)
        with pytest.raises(UnknownArrivalError):
            arrival_process("pareto")
        assert set(ARRIVAL_NAMES) <= set(available_arrivals())

    def test_bursty_parameter_validation(self):
        with pytest.raises(ValueError):
            arrival_process("bursty", burst_ratio=0.5)
        with pytest.raises(ValueError):
            arrival_process("bursty", burst_ratio=10.0, burst_fraction=0.2)
        with pytest.raises(ValueError):
            arrival_process("diurnal", amplitude=1.5)


# ---------------------------------------------------------------------------
# Queue + dynamic batcher
# ---------------------------------------------------------------------------
class FakeRequest:
    def __init__(self, request_id):
        self.request_id = request_id
        self.num_candidates = 1


def drive(policy, arrivals):
    """Feed (request_id, arrival_ns) pairs through a batcher; return batches."""
    queue = AdmissionQueue(host_id=0)
    batcher = DynamicBatcher(policy, queue)
    batches = []
    for request_id, now in arrivals:
        batches.extend(batcher.offer(FakeRequest(request_id), now))
    batches.extend(batcher.close())
    return batches, queue


class TestBatcher:
    def test_full_batch_dispatches_at_filling_arrival(self):
        policy = BatchPolicy(max_batch_size=3, max_wait_ns=1_000_000)
        batches, _ = drive(policy, [(0, 100), (1, 200), (2, 450), (3, 500)])
        assert [len(b) for b in batches] == [3, 1]
        assert batches[0].dispatch_ns == 450  # filled on the third arrival
        assert batches[1].dispatch_ns == 500 + 1_000_000  # timer flush at close

    def test_arrival_exactly_at_deadline_joins_the_batch(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_ns=1000)
        batches, _ = drive(policy, [(0, 100), (1, 1100)])
        assert [len(b) for b in batches] == [2]
        assert batches[0].dispatch_ns == 1100  # deadline == oldest + max_wait

    def test_arrival_just_after_deadline_starts_a_new_batch(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_ns=1000)
        batches, _ = drive(policy, [(0, 100), (1, 1101)])
        assert [len(b) for b in batches] == [1, 1]
        assert batches[0].dispatch_ns == 1100  # timer fired before the arrival
        assert batches[1].dispatch_ns == 1101 + 1000

    def test_end_of_stream_flushes_at_deadline_not_last_arrival(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_ns=5000)
        batches, _ = drive(policy, [(0, 100), (1, 300)])
        assert [len(b) for b in batches] == [2]
        assert batches[0].dispatch_ns == 100 + 5000

    def test_zero_wait_batches_only_simultaneous_arrivals(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_ns=0)
        batches, _ = drive(policy, [(0, 100), (1, 100), (2, 101), (3, 102)])
        assert [len(b) for b in batches] == [2, 1, 1]
        assert [b.dispatch_ns for b in batches] == [100, 101, 102]

    def test_queue_wait_and_timeline_accounting(self):
        policy = BatchPolicy(max_batch_size=2, max_wait_ns=10_000)
        batches, queue = drive(policy, [(0, 0), (1, 400), (2, 500)])
        assert batches[0].queue_wait_ns == [400, 0]
        assert queue.max_depth == 2
        assert queue.admitted == 3
        # Timeline ends drained; same-timestamp transitions coalesce to the
        # final state (push+dispatch at t=400 settles at depth 0), so the
        # timeline never exceeds the tracked max_depth.
        assert queue.timeline[-1][1] == 0
        assert max(depth for _, depth in queue.timeline) <= queue.max_depth
        assert queue.mean_depth() >= 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ns=-1.0)


# ---------------------------------------------------------------------------
# Percentile math and LatencyStats
# ---------------------------------------------------------------------------
class TestPercentiles:
    @pytest.mark.parametrize("size", [1, 2, 5, 100, 1001])
    @pytest.mark.parametrize("q", [0.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0])
    def test_matches_numpy_percentile(self, size, q):
        rng = np.random.default_rng(size)
        samples = rng.exponential(1e4, size=size)
        assert percentile(samples.tolist(), q) == pytest.approx(
            float(np.percentile(samples, q)), rel=1e-12, abs=1e-9
        )

    def test_latency_stats_fields_match_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(9.0, 1.0, size=4096)
        stats = LatencyStats.from_samples(samples.tolist())
        assert stats.count == len(samples)
        assert stats.mean_ns == pytest.approx(float(samples.mean()))
        for q, field_value in [
            (50.0, stats.p50_ns),
            (90.0, stats.p90_ns),
            (95.0, stats.p95_ns),
            (99.0, stats.p99_ns),
            (99.9, stats.p999_ns),
        ]:
            assert field_value == pytest.approx(float(np.percentile(samples, q)), rel=1e-12)
        assert stats.min_ns <= stats.p50_ns <= stats.p95_ns <= stats.p99_ns <= stats.max_ns
        assert stats.is_finite()

    def test_percentile_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_latency_stats_round_trip_and_quantile(self):
        stats = LatencyStats.from_samples([3.0, 1.0, 2.0])
        rebuilt = LatencyStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats
        assert stats.quantile("p50") == stats.p50_ns
        assert stats.quantile("mean") == stats.mean_ns
        with pytest.raises(ValueError):
            stats.quantile("p42")
        assert LatencyStats.from_samples([]).count == 0

    def test_sim_result_carries_latency_section(self):
        stats = LatencyStats.from_samples([10.0, 20.0, 30.0])
        sim = SimResult(system="x", total_ns=30.0, requests=3, lookups=3, latency=stats)
        rebuilt = SimResult.from_dict(json.loads(json.dumps(sim.to_dict())))
        assert rebuilt.latency == stats
        assert rebuilt.latency.is_finite()
        # Absent section stays absent.
        bare = SimResult(system="x", total_ns=1.0, requests=1, lookups=1)
        assert SimResult.from_dict(bare.to_dict()).latency is None


# ---------------------------------------------------------------------------
# End-to-end serving sessions
# ---------------------------------------------------------------------------
def quick_session(system="pifs-rec", **settings):
    return Simulation(system).quick().apply(**settings)


class TestServing:
    def test_identical_seeds_reproduce_identical_metrics(self):
        first = quick_session().serve(2e5, seed=13)
        second = quick_session().serve(2e5, seed=13)
        assert first.to_dict() == second.to_dict()
        # Byte-identical request timelines, not just summary stats.
        assert [
            (r.request_id, r.arrival_ns, r.dispatch_ns, r.start_ns, r.complete_ns)
            for r in first.records
        ] == [
            (r.request_id, r.arrival_ns, r.dispatch_ns, r.start_ns, r.complete_ns)
            for r in second.records
        ]

    def test_different_arrival_seed_changes_latency(self):
        first = quick_session().serve(2e5, seed=13)
        second = quick_session().serve(2e5, seed=14)
        assert first.latency.to_dict() != second.latency.to_dict()

    @pytest.mark.parametrize("system", ["pifs-rec", "pond", "beacon"])
    def test_systems_report_finite_tail_latency(self, system):
        result = quick_session(system).serve(3e5, sla_ns=5e6)
        workload = quick_session(system).build_workload()
        assert result.requests == len(workload.requests)
        assert result.latency.count == result.requests
        assert result.latency.is_finite()
        assert 0.0 < result.latency.p50_ns <= result.latency.p95_ns <= result.latency.p99_ns
        assert result.goodput_qps > 0.0
        assert 0.0 <= result.sla_attainment <= 1.0
        assert result.batches > 0
        assert result.mean_batch_size == pytest.approx(result.requests / result.batches)
        assert result.sim is not None and result.sim.latency == result.latency

    @pytest.mark.parametrize("arrival", ARRIVAL_NAMES)
    def test_every_arrival_process_serves(self, arrival):
        result = quick_session("pond").serve(4e5, arrival=arrival, seed=5)
        assert result.arrival == arrival
        assert result.latency.is_finite() and result.latency.p99_ns > 0

    def test_latency_degrades_toward_saturation(self):
        base = quick_session("pond", num_batches=8)
        relaxed = base.clone().serve(4e5, max_wait_ns=20_000.0)
        saturated = base.clone().serve(8e6, max_wait_ns=20_000.0)
        assert saturated.latency.p99_ns > relaxed.latency.p99_ns
        assert saturated.achieved_qps < 8e6  # the host cannot keep up

    def test_max_queue_depth_survives_size_triggered_dispatch(self):
        # A size-triggered dispatch pops at the exact ns of the arrival that
        # filled the batch, which collapses the peak out of the timeline —
        # max_queue_depth must come from the queue's own tracking instead.
        result = quick_session("pond").serve(1e7, max_batch_size=8, seed=2)
        assert result.max_queue_depth == 8
        timeline_peak = max(
            (depth for tl in result.queue_depth_timelines.values() for _, depth in tl),
            default=0,
        )
        assert result.max_queue_depth >= timeline_peak

    def test_serve_result_json_round_trip_excludes_records(self):
        result = quick_session("pond").serve(2e5, sla_ns=1e6)
        rebuilt = ServeResult.from_json(result.to_json())
        assert rebuilt.records is None
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.queue_depth_timelines == result.queue_depth_timelines

    def test_serve_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(qps=0.0)
        with pytest.raises(ValueError):
            ServeConfig(qps=1e5, sla_ns=-1.0)
        with pytest.raises(FrozenInstanceError):
            replace(ServeConfig(qps=1e5), qps=2e5).__setattr__("qps", 1.0)

    def test_direct_serve_entry_point(self, tiny_workload, tiny_system):
        from repro.baselines.pond import PondSystem

        result = serve(
            PondSystem(tiny_system), tiny_workload, ServeConfig(qps=5e5, seed=3)
        )
        assert result.requests == len(tiny_workload.requests)
        assert result.system == "Pond"
        assert result.latency.is_finite()


# ---------------------------------------------------------------------------
# SLA sweep
# ---------------------------------------------------------------------------
def sweep_session():
    return Simulation("pond").quick().num_batches(6)


SWEEP_KWARGS = dict(
    qps_bounds=(5e4, 4e6),
    grid_points=3,
    refine_iters=4,
    max_wait_ns=20_000.0,
)


class TestSLASweep:
    def test_serial_and_parallel_sweeps_are_identical(self):
        serial = sweep_session().sla_sweep(6e4, parallel=False, **SWEEP_KWARGS)
        parallel = sweep_session().sla_sweep(6e4, parallel=True, **SWEEP_KWARGS)
        assert serial.to_dict() == parallel.to_dict()
        assert serial.max_sustainable_qps > 0.0

    def test_max_qps_monotone_as_budget_tightens(self):
        budgets_ns = (2e5, 8e4, 5e4, 3e4, 1.5e4)
        sustained = [
            sweep_session().sla_sweep(budget, **SWEEP_KWARGS).max_sustainable_qps
            for budget in budgets_ns
        ]
        assert all(math.isfinite(q) for q in sustained)
        assert all(a >= b for a, b in zip(sustained, sustained[1:]))

    def test_sweep_records_probes_and_round_trips(self):
        result = sweep_session().sla_sweep(6e4, **SWEEP_KWARGS)
        assert len(result.probes) >= SWEEP_KWARGS["grid_points"]
        for probe in result.probes:
            assert math.isfinite(probe.latency_ns)
            assert probe.meets_sla == (probe.latency_ns <= result.sla_ns)
        rebuilt = type(result).from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()

    def test_impossible_budget_returns_zero(self):
        result = sweep_session().sla_sweep(1.0, **SWEEP_KWARGS)  # 1 ns budget
        assert result.max_sustainable_qps == 0.0

    def test_bad_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            sla_sweep(lambda qps: None, 1e5, (1e5, 1e4))
        with pytest.raises(ValueError):
            sla_sweep(lambda qps: None, -1.0, (1e4, 1e5))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServeCLI:
    def test_default_serve_reports_three_systems(self, capsys):
        from repro.api.cli import main

        assert main(["serve", "--quick", "--qps", "3e5", "--sla-ms", "1"]) == 0
        out = capsys.readouterr().out
        for column in ("p50_ns", "p95_ns", "p99_ns", "goodput_qps"):
            assert column in out
        for system in ("pifs-rec", "pond", "beacon"):
            assert system in out

    def test_smoke_mode_covers_every_registered_system(self, capsys):
        from repro.api.cli import main
        from repro.api.registry import available_systems

        assert main(["serve", "--all", "--smoke", "--qps", "3e5"]) == 0
        out = capsys.readouterr().out
        for system in available_systems():
            assert system in out

    def test_unknown_system_exits_with_error(self, capsys):
        from repro.api.cli import main

        assert main(["serve", "not-a-system", "--quick"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_json_output_with_sla_sweep_is_valid_json(self, capsys):
        from repro.api.cli import main

        code = main([
            "serve", "pond", "--quick", "--json",
            "--find-max-qps", "--sla-ms", "0.06",
            "--qps-min", "5e4", "--qps-max", "2e6",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["system"] for entry in payload["results"]] == ["Pond"]
        assert "pond" in payload["sla_sweeps"]
        assert math.isfinite(payload["sla_sweeps"]["pond"]["max_sustainable_qps"])

    def test_find_max_qps_without_sla_is_an_error(self, capsys):
        from repro.api.cli import main

        assert main(["serve", "pond", "--quick", "--find-max-qps"]) == 2
        assert "--sla-ms" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Queue-depth aggregation edge cases
# ---------------------------------------------------------------------------
class TestQueueDepthAggregation:
    """The mean-queue-depth average must only span hosts that admitted work."""

    def test_zero_request_workload(self, tiny_model, tiny_system):
        from repro.api.registry import create_system
        from repro.config import WorkloadConfig
        from repro.traces.workload import build_workload

        workload = build_workload(
            WorkloadConfig(model=tiny_model, batch_size=2, num_batches=0, pooling_factor=4, seed=5)
        )
        assert not workload.requests
        result = serve(create_system("pond", tiny_system), workload, ServeConfig(qps=1e5))
        assert result.requests == 0
        assert result.mean_queue_depth == 0.0
        assert result.max_queue_depth == 0
        assert result.queue_depth_timelines == {}
        assert result.mean_batch_size == 0.0
        assert result.achieved_qps == 0.0
        assert result.sla_attainment == 0.0

    def test_hosts_without_admissions_are_excluded(self, tiny_workload, tiny_system):
        """A host that never admits must not drag the mean toward zero.

        The workload targets host 0 only; serving it on a two-host machine
        must leave host 1 out of the timelines and produce the same mean
        depth as the single-host machine (queue dynamics are a pure
        function of arrivals and batching).
        """
        from repro.api.registry import create_system

        single = serve(
            create_system("pond", tiny_system), tiny_workload, ServeConfig(qps=2e5, seed=3)
        )
        two_hosts = serve(
            create_system("pond", replace(tiny_system, num_hosts=2)),
            tiny_workload,
            ServeConfig(qps=2e5, seed=3),
        )
        assert set(two_hosts.queue_depth_timelines) == {0}
        assert two_hosts.mean_queue_depth == single.mean_queue_depth
        assert two_hosts.max_queue_depth == single.max_queue_depth


# ---------------------------------------------------------------------------
# Vector serve dispatch
# ---------------------------------------------------------------------------
class TestVectorServeDispatch:
    def test_vector_engine_routes_through_batch_hook(self, tiny_workload, tiny_system, monkeypatch):
        from repro.api.registry import create_system
        from repro.sls.engine import SLSSystem

        calls = []
        original = SLSSystem.service_batch_vector

        def spy(self, requests, start_ns, host_id):
            calls.append(len(requests))
            return original(self, requests, start_ns, host_id)

        monkeypatch.setattr(SLSSystem, "service_batch_vector", spy)
        system = create_system("pifs-rec", tiny_system).set_engine("vector")
        result = serve(system, tiny_workload, ServeConfig(qps=2e5))
        assert system._vector is not None
        assert calls, "vector serve did not dispatch through service_batch_vector"
        assert sum(calls) == len(tiny_workload.requests)
        assert result.requests == len(tiny_workload.requests)

    def test_scalar_engine_keeps_per_request_dispatch(self, tiny_workload, tiny_system, monkeypatch):
        from repro.api.registry import create_system
        from repro.sls.engine import SLSSystem

        calls = []
        original = SLSSystem.service_batch_vector

        def spy(self, requests, start_ns, host_id):
            calls.append(len(requests))
            return original(self, requests, start_ns, host_id)

        monkeypatch.setattr(SLSSystem, "service_batch_vector", spy)
        serve(create_system("pifs-rec", tiny_system), tiny_workload, ServeConfig(qps=2e5))
        assert calls == []

    def test_batch_hook_requires_vector_context(self, tiny_workload, tiny_system):
        from repro.api.registry import create_system

        system = create_system("pond", tiny_system)
        system.begin_session(tiny_workload)
        with pytest.raises(RuntimeError, match="vector context"):
            system.service_batch_vector(list(tiny_workload.requests[:1]), 0.0, 0)

    def test_batch_hook_matches_sequential_service(self, tiny_workload, tiny_system):
        from repro.api.registry import create_system

        batched = create_system("pifs-rec", tiny_system).set_engine("vector")
        batched.begin_session(tiny_workload)
        completions = batched.service_batch_vector(list(tiny_workload.requests), 0.0, 0)

        sequential = create_system("pifs-rec", tiny_system).set_engine("vector")
        sequential.begin_session(tiny_workload)
        cursor = 0.0
        expected = []
        for request in tiny_workload.requests:
            cursor = sequential.service_request(request, cursor, 0)
            expected.append(cursor)
        assert completions == expected
