"""Trace-file ingestion/export (repro.traces.files) and drift generation.

The contract under test: a synthetic workload exported to disk and loaded
back rebuilds the *bit-identical* request stream — same ids, hosts,
tables, rows and byte addresses — so trace files are a faithful
interchange format, not an approximation.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import RMC1, WorkloadConfig, scaled_model
from repro.traces.drift import build_drifting_workload, generate_drifting_trace
from repro.traces.files import (
    load_criteo_tsv,
    load_trace,
    load_trace_file,
    save_criteo_tsv,
    save_trace,
    save_workload_trace,
    trace_format,
    workload_from_trace,
)
from repro.traces.meta import TraceBatch, generate_meta_like_trace
from repro.traces.workload import build_workload, workload_from_batches


@pytest.fixture()
def config(tiny_model):
    return WorkloadConfig(model=tiny_model, batch_size=4, num_batches=3, pooling_factor=6, seed=7)


def _assert_workloads_identical(a, b):
    assert len(a.requests) == len(b.requests)
    for left, right in zip(a.requests, b.requests):
        assert left.request_id == right.request_id
        assert left.host_id == right.host_id
        assert left.table == right.table
        assert left.sample == right.sample
        assert left.row_bytes == right.row_bytes
        assert np.array_equal(left.rows, right.rows)
        assert np.array_equal(left.addresses, right.addresses)


class TestNpzRoundTrip:
    def test_batches_bit_identical(self, config, tmp_path):
        batches = generate_meta_like_trace(config)
        path = save_trace(batches, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert len(loaded) == len(batches)
        for original, restored in zip(batches, loaded):
            assert original.num_tables == restored.num_tables
            for t in range(original.num_tables):
                assert np.array_equal(
                    original.indices_per_table[t], restored.indices_per_table[t]
                )
                assert np.array_equal(
                    original.offsets_per_table[t], restored.offsets_per_table[t]
                )

    def test_workload_round_trip_bit_identical(self, config, tmp_path):
        workload = build_workload(config)
        assert workload.trace is not None  # generators record their batches
        path = save_workload_trace(workload, tmp_path / "w.npz")
        rebuilt = workload_from_trace(path, config.model)
        _assert_workloads_identical(workload, rebuilt)
        assert rebuilt.total_lookups == workload.total_lookups
        assert rebuilt.working_set_bytes == workload.working_set_bytes

    def test_multi_host_round_trip(self, config, tmp_path):
        workload = build_workload(config, num_hosts=3)
        path = save_workload_trace(workload, tmp_path / "w.npz")
        rebuilt = workload_from_trace(path, config.model, num_hosts=3)
        _assert_workloads_identical(workload, rebuilt)

    def test_pickle_strips_trace(self, config):
        """Workloads ship to sweep workers without duplicating the arrays."""
        import pickle

        workload = build_workload(config)
        shipped = pickle.loads(pickle.dumps(workload))
        assert shipped.trace is None
        _assert_workloads_identical(workload, shipped)
        assert len(pickle.dumps(workload)) < len(
            pickle.dumps(dict(workload.__dict__))
        )

    def test_requestless_workload_refuses_export(self, config, tmp_path):
        workload = build_workload(config)
        workload.trace = None  # assembled-from-requests workloads carry no batches
        with pytest.raises(ValueError, match="no trace batches"):
            save_workload_trace(workload, tmp_path / "w.npz")

    def test_empty_trace_refused(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_trace([], tmp_path / "w.npz")

    def test_truncated_archive_detected(self, config, tmp_path):
        batches = generate_meta_like_trace(config)
        path = tmp_path / "bad.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                num_batches=np.asarray(2),
                num_tables=np.asarray(1),
                batch0_table0_indices=batches[0].indices_per_table[0],
                batch0_table0_offsets=batches[0].offsets_per_table[0],
            )
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        with open(path, "wb") as handle:
            np.savez(handle, something=np.arange(4))
        with pytest.raises(ValueError, match="not a trace archive"):
            load_trace(path)

    def test_malformed_offsets_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                num_batches=np.asarray(1),
                num_tables=np.asarray(1),
                batch0_table0_indices=np.asarray([1, 2], dtype=np.int64),
                batch0_table0_offsets=np.asarray([3], dtype=np.int64),  # not starting at 0
            )
        with pytest.raises(ValueError, match="offsets must start at 0"):
            load_trace(path)


class TestCriteoTsv:
    def _single_lookup_batches(self, rng, num_tables=3, samples=10):
        values = rng.integers(0, 50, size=(samples, num_tables))
        batches = []
        for start in range(0, samples, 4):
            chunk = values[start : start + 4]
            offsets = np.arange(len(chunk), dtype=np.int64)
            batches.append(
                TraceBatch(
                    indices_per_table=[chunk[:, t].astype(np.int64) for t in range(num_tables)],
                    offsets_per_table=[offsets.copy() for _ in range(num_tables)],
                )
            )
        return batches

    def test_round_trip(self, tmp_path):
        batches = self._single_lookup_batches(np.random.default_rng(3))
        path = save_criteo_tsv(batches, tmp_path / "trace.tsv")
        loaded = load_criteo_tsv(path, batch_size=4)
        assert len(loaded) == len(batches)
        for original, restored in zip(batches, loaded):
            for t in range(original.num_tables):
                assert np.array_equal(
                    original.indices_per_table[t], restored.indices_per_table[t]
                )

    def test_hex_indices_parse(self, tmp_path):
        path = tmp_path / "hex.tsv"
        path.write_text("0a\tff\n1b\t2c\n", encoding="utf-8")
        batches = load_criteo_tsv(path, batch_size=2, hex_indices=True)
        assert batches[0].indices_per_table[0].tolist() == [10, 27]
        assert batches[0].indices_per_table[1].tolist() == [255, 44]

    def test_hex_base_is_per_file_never_guessed(self, tmp_path):
        """All-digit hashed tokens must not silently parse as decimal."""
        path = tmp_path / "hex.tsv"
        path.write_text("10131014\t68fd1e64\n", encoding="utf-8")
        batches = load_criteo_tsv(path, hex_indices=True)
        assert batches[0].indices_per_table[0].tolist() == [0x10131014]
        # Without the flag a lettered hex token is an error, not a guess.
        with pytest.raises(ValueError, match="hex_indices=True"):
            load_criteo_tsv(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text("# header\n1\t2\n\n3\t4\n", encoding="utf-8")
        batches = load_criteo_tsv(path, batch_size=8)
        assert batches[0].batch_size == 2

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("1\t2\n3\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected 2 columns"):
            load_criteo_tsv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tpotato\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not a decimal index"):
            load_criteo_tsv(path)

    def test_negative_index_rejected_at_ingestion(self, tmp_path):
        """Malformed files fail with file:line context, not deep in the simulator."""
        path = tmp_path / "neg.tsv"
        path.write_text("1\t-3\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"neg\.tsv:1: negative embedding index"):
            load_criteo_tsv(path)

    def test_multi_lookup_bags_not_expressible(self, config, tmp_path):
        batches = generate_meta_like_trace(config)  # pooling > 1
        with pytest.raises(ValueError, match="one index per bag"):
            save_criteo_tsv(batches, tmp_path / "trace.tsv")

    def test_workload_from_tsv(self, tiny_model, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text("1\t2\t3\t4\n5\t6\t7\t8\n", encoding="utf-8")
        workload = workload_from_trace(path, tiny_model, batch_size=2)
        assert len(workload.requests) == 8  # 2 samples x 4 tables
        assert workload.distribution.startswith("file:")

    def test_short_row_cites_physical_line(self, tmp_path):
        """Line numbers count file lines (comments and blanks included),
        so the reported location matches what an editor shows."""
        path = tmp_path / "short.tsv"
        path.write_text("# header\n1\t2\n\n3\t4\n5\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"short\.tsv:5: expected 2 columns, found 1"):
            load_criteo_tsv(path)

    def test_extra_column_cites_line(self, tmp_path):
        path = tmp_path / "wide.tsv"
        path.write_text("1\t2\n3\t4\t5\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"wide\.tsv:2: expected 2 columns, found 3"):
            load_criteo_tsv(path)

    def test_non_numeric_cites_line_and_token(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2\n3\tpotato\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.tsv:2: 'potato' is not a decimal index"):
            load_criteo_tsv(path)

    def test_hex_decimal_mix_rejected_per_file(self, tmp_path):
        """One file, one base: a decimal file with a stray hex token fails
        (with the hex_indices hint), and a hex file with a non-hex token
        fails too — tokens are never base-guessed row by row."""
        path = tmp_path / "mixed.tsv"
        path.write_text("10\t20\n30\t4f\n", encoding="utf-8")
        with pytest.raises(
            ValueError, match=r"mixed\.tsv:2: '4f' is not a decimal index.*hex_indices=True"
        ):
            load_criteo_tsv(path)
        # The same file parses fine as hex (all-digit tokens are valid hex) —
        # and the values differ from the decimal reading, which is exactly
        # why the base is declared per file instead of guessed.
        batches = load_criteo_tsv(path, hex_indices=True)
        assert batches[0].indices_per_table[0].tolist() == [0x10, 0x30]
        bad_hex = tmp_path / "badhex.tsv"
        bad_hex.write_text("0a\tzz\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"badhex\.tsv:1: 'zz' is not a hexadecimal index"):
            load_criteo_tsv(bad_hex, hex_indices=True)

    def test_streaming_decode_is_incremental(self, tmp_path):
        """Batches before a malformed row are yielded before the error
        surfaces — the parser never buffers the whole file."""
        from repro.traces.stream import iter_criteo_tsv

        path = tmp_path / "tail.tsv"
        path.write_text("1\t2\n3\t4\n5\t6\nbad\tnope\n", encoding="utf-8")
        stream = iter_criteo_tsv(path, batch_size=2)
        first = next(stream)
        assert first.indices_per_table[0].tolist() == [1, 3]
        with pytest.raises(ValueError, match=r"tail\.tsv:4"):
            next(stream)


class TestFormatDetection:
    def test_suffix_detection(self):
        assert trace_format("a/b/trace.npz") == "npz"
        assert trace_format("trace.TSV") == "tsv"

    def test_explicit_format_wins(self):
        assert trace_format("trace.dat", format="npz") == "npz"

    def test_unknown_suffix_and_format(self):
        with pytest.raises(ValueError, match="cannot infer"):
            trace_format("trace.dat")
        with pytest.raises(ValueError, match="unknown trace format"):
            trace_format("trace.npz", format="parquet")

    def test_dispatch(self, config, tmp_path):
        batches = generate_meta_like_trace(config)
        save_trace(batches, tmp_path / "t.npz")
        assert len(load_trace_file(tmp_path / "t.npz")) == len(batches)


class TestDrift:
    def test_deterministic(self, config):
        config = replace(config, num_batches=6)
        a = generate_drifting_trace(config, period_batches=2)
        b = generate_drifting_trace(config, period_batches=2)
        for batch_a, batch_b in zip(a, b):
            for t in range(batch_a.num_tables):
                assert np.array_equal(
                    batch_a.indices_per_table[t], batch_b.indices_per_table[t]
                )

    def test_hot_set_rotates_between_phases(self, tiny_model):
        config = WorkloadConfig(
            model=tiny_model, batch_size=16, num_batches=4, pooling_factor=16, seed=5
        )
        batches = generate_drifting_trace(
            config, period_batches=2, hot_fraction=0.05, hot_probability=0.95
        )
        def top_rows(batch):
            counts = np.bincount(
                np.concatenate(batch.indices_per_table), minlength=tiny_model.num_embeddings
            )
            hot = max(1, int(tiny_model.num_embeddings * 0.05))
            return set(np.argsort(counts)[::-1][:hot].tolist())

        # Same phase shares the hot set; the next phase moved on.
        assert top_rows(batches[0]) == top_rows(batches[1])
        assert top_rows(batches[0]) != top_rows(batches[2])

    def test_drift_workload_round_trips(self, config, tmp_path):
        config = replace(config, num_batches=4)
        workload = build_drifting_workload(config, period_batches=2)
        path = save_workload_trace(workload, tmp_path / "drift.npz")
        rebuilt = workload_from_trace(path, config.model)
        _assert_workloads_identical(workload, rebuilt)

    def test_invalid_knobs(self, config):
        with pytest.raises(ValueError):
            generate_drifting_trace(config, period_batches=0)
        with pytest.raises(ValueError):
            generate_drifting_trace(config, hot_fraction=0.0)
        with pytest.raises(ValueError):
            generate_drifting_trace(config, hot_probability=1.5)


class TestWorkloadFromBatches:
    def test_matches_build_workload(self, config):
        """The extracted flattening path is the one build_workload uses."""
        batches = generate_meta_like_trace(config)
        direct = workload_from_batches(
            batches,
            config.model,
            distribution="meta",
            batch_size=config.batch_size,
            num_batches=config.num_batches,
        )
        built = build_workload(config)
        _assert_workloads_identical(direct, built)

    def test_defaults_derived_from_batches(self, config):
        batches = generate_meta_like_trace(config)
        workload = workload_from_batches(batches, config.model)
        assert workload.num_batches == len(batches)
        assert workload.batch_size == batches[0].batch_size
