"""The ``repro.net`` packet tier: event core, port queues, fault composition.

Three layers of guarantees:

* the :class:`~repro.net.core.EventCore` orders simultaneous events by a
  seeded deterministic rank — the same seed replays the same global order
  regardless of insertion order (a hypothesis property, not one example);
* a :class:`~repro.net.port.PortQueue` with unbounded capacity is an
  observer (admission is the identity), finite credits produce exact
  backpressure times, the priority policy reserves credits for
  CONTROL/INSTRUCTION flits, and drop mode counts retries;
* fault mutators (link/hop degradation) compose with packet fidelity:
  a degraded link changes the service rate *and* what the queues observe.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import create_system
from repro.cxl.link import CXLLink
from repro.cxl.protocol import MemOpcode
from repro.net import (
    Event,
    EventCore,
    PacketConfig,
    PortQueue,
    Priority,
    priority_of_opcode,
    seeded_rank,
)
from repro.scenarios.faults import HopDegradation, LinkDegradation


# ---------------------------------------------------------------------------
# Seeded rank + event core
# ---------------------------------------------------------------------------
class TestSeededRank:
    def test_deterministic(self):
        assert seeded_rank(0, 42) == seeded_rank(0, 42)
        assert seeded_rank(7, 42) == seeded_rank(7, 42)

    def test_seed_changes_rank(self):
        ranks = {seeded_rank(seed, 42) for seed in range(16)}
        assert len(ranks) == 16

    def test_key_changes_rank(self):
        ranks = {seeded_rank(3, key) for key in range(64)}
        assert len(ranks) == 64

    def test_range(self):
        for seed in (0, 1, 2**31):
            for key in (0, 1, 2**63):
                assert 0 <= seeded_rank(seed, key) < 2**64


class TestEventCore:
    def test_time_order(self):
        core = EventCore()
        core.schedule(3.0, key=1)
        core.schedule(1.0, key=2)
        core.schedule(2.0, key=3)
        assert [event.time_ns for event in core.drain()] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        core = EventCore()
        core.schedule(1.0, priority=1, key=1)
        core.schedule(1.0, priority=0, key=2)
        assert [event.key for event in core.drain()] == [2, 1]

    def test_cannot_schedule_in_the_past(self):
        core = EventCore()
        core.schedule(5.0)
        core.pop()
        with pytest.raises(ValueError, match="cannot schedule"):
            core.schedule(4.0)

    def test_pop_advances_now(self):
        core = EventCore()
        core.schedule(2.5, payload="x")
        event = core.pop()
        assert isinstance(event, Event)
        assert core.now == 2.5
        assert event.payload == "x"
        assert core.pending == 0

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        order=st.permutations(list(range(12))),
    )
    @settings(max_examples=40, deadline=None)
    def test_tie_order_is_seeded_not_insertion_order(self, seed, order):
        """Same seed → same global order for simultaneous events, however
        they were inserted; the rank (not arrival) breaks the tie."""
        events = [(float(i % 3), i % 2, i) for i in range(12)]  # (time, prio, key)

        def drain_order(insertion):
            core = EventCore(seed=seed)
            for index in insertion:
                time_ns, priority, key = events[index]
                core.schedule(time_ns, priority=priority, key=key)
            return [event.key for event in core.drain()]

        reference = drain_order(list(range(12)))
        assert drain_order(list(order)) == reference

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        n=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_ordered_matches_drain(self, seed, n):
        """The bulk lexsort path is exactly the heap order, event for event."""
        times = [float((i * 7) % 5) for i in range(n)]
        prios = [i % 2 for i in range(n)]
        keys = list(range(n))
        core = EventCore(seed=seed)
        for time_ns, priority, key in zip(times, prios, keys):
            core.schedule(time_ns, priority=priority, key=key)
        heap_order = [event.key for event in core.drain()]
        bulk_order = [keys[i] for i in EventCore(seed=seed).ordered(times, prios, keys)]
        assert bulk_order == heap_order

    def test_different_seeds_reorder_ties(self):
        def keys(seed):
            core = EventCore(seed=seed)
            for key in range(32):
                core.schedule(0.0, key=key)
            return [event.key for event in core.drain()]

        assert any(keys(seed) != keys(0) for seed in range(1, 8))


# ---------------------------------------------------------------------------
# Port queues
# ---------------------------------------------------------------------------
class TestPortQueue:
    def test_unbounded_admission_is_identity(self):
        queue = PortQueue("p", capacity=0)
        for start in (0.0, 5.0, 5.0, 2.0):
            assert queue.admit(start) == start
        assert queue.backpressure_ns == 0.0

    def test_backpressure_waits_for_a_credit(self):
        queue = PortQueue("p", capacity=1)
        assert queue.admit(0.0) == 0.0
        queue.depart(0.0, 0.0, 10.0, 64)
        # Second packet issued at t=2 while the first is in flight until
        # t=10: with a single credit it is admitted exactly at delivery.
        assert queue.admit(2.0) == 10.0
        queue.depart(2.0, 10.0, 20.0, 64)
        assert queue.backpressure_ns == 8.0
        assert queue.packets == 2

    def test_priority_policy_reserves_credits(self):
        queue = PortQueue("p", capacity=1, policy="priority")
        queue.admit(0.0, MemOpcode.MEM_RD_DATA)
        queue.depart(0.0, 0.0, 100.0, 64, MemOpcode.MEM_RD_DATA)
        # DATA waits for the credit; CONTROL and INSTRUCTION bypass.
        assert queue.admit(1.0, MemOpcode.MEM_RD_DATA) == 100.0
        assert queue.admit(1.0, MemOpcode.MEM_RD) == 1.0
        assert queue.admit(1.0, MemOpcode.PIFS_CONFIG) == 1.0
        assert queue.admit(1.0, priority=Priority.INSTRUCTION) == 1.0

    def test_drop_mode_counts_retries(self):
        queue = PortQueue("p", capacity=1, drop=True, retry_ns=50.0)
        queue.admit(0.0)
        queue.depart(0.0, 0.0, 120.0, 64)
        # Full buffer: the packet is dropped and retried every 50 ns until
        # a credit frees at t=120 → retries at 50 and 100, admitted at 150.
        assert queue.admit(0.0) == 150.0
        assert queue.drops == 3
        assert queue.retries == 3

    def test_flows_accumulate_per_class(self):
        queue = PortQueue("p", capacity=0)
        queue.depart(0.0, 0.0, 10.0, 64, MemOpcode.MEM_RD)
        queue.depart(0.0, 0.0, 12.0, 256, MemOpcode.MEM_RD_DATA)
        queue.depart(1.0, 1.0, 13.0, 256, MemOpcode.MEM_RD_DATA)
        flows = queue.flows
        assert flows[Priority.CONTROL].packets == 1
        assert flows[Priority.DATA].packets == 2
        assert flows[Priority.DATA].bytes == 512

    def test_priority_of_opcode(self):
        assert priority_of_opcode(None) is Priority.DATA
        assert priority_of_opcode(Priority.BULK) is Priority.BULK
        assert priority_of_opcode(MemOpcode.MEM_RD) is Priority.CONTROL
        assert priority_of_opcode(MemOpcode.PIFS_DATA_FETCH) is Priority.INSTRUCTION
        assert priority_of_opcode(MemOpcode.MEM_RD_DATA) is Priority.DATA

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            PortQueue("p", policy="lifo")


class TestLinkWithPort:
    def test_unbounded_port_is_pure_observer(self):
        bare = CXLLink(4.0, name="bare")
        observed = CXLLink(4.0, name="observed")
        observed.attach_port(PortQueue("observed", capacity=0))
        starts = [0.0, 1.0, 1.0, 30.0, 2.0]
        assert [observed.transfer(256, s) for s in starts] == [
            bare.transfer(256, s) for s in starts
        ]
        assert observed.port.packets == len(starts)

    def test_single_credit_delays_completion(self):
        bare = CXLLink(4.0, propagation_ns=100.0, name="bare")
        tight = CXLLink(4.0, propagation_ns=100.0, name="tight")
        tight.attach_port(PortQueue("tight", capacity=1))
        bare_finish = [bare.transfer(256, 0.0) for _ in range(4)]
        tight_finish = [tight.transfer(256, 0.0) for _ in range(4)]
        assert tight_finish[0] == bare_finish[0]
        assert all(t > b for t, b in zip(tight_finish[1:], bare_finish[1:]))
        assert tight.port.backpressure_ns > 0.0


class TestPacketConfig:
    def test_round_trip(self):
        config = PacketConfig(capacity=3, policy="priority", drop=True, retry_ns=25.0)
        assert PacketConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketConfig(capacity=-1)
        with pytest.raises(ValueError):
            PacketConfig(policy="lifo")
        with pytest.raises(ValueError):
            PacketConfig(retry_ns=-5.0)


# ---------------------------------------------------------------------------
# Fabric attachment + stats
# ---------------------------------------------------------------------------
class TestPacketFabric:
    def test_finalize_reports_every_port(self, tiny_workload, tiny_system):
        system = create_system("pifs-rec", tiny_system).set_engine("packet")
        result = system.run(tiny_workload)
        net = result.net
        assert net is not None
        assert net.packets == sum(port.packets for port in net.ports.values())
        # Every attached port reports, and port names match the fabric's.
        assert set(net.ports) == {name for name in net.ports}
        assert any(port.packets > 0 for port in net.ports.values())

    def test_stats_round_trip(self, tiny_workload, tiny_system):
        system = create_system("recnmp", tiny_system).set_engine("packet")
        system.set_packet_config(PacketConfig(capacity=2, timeline_points=32))
        net = system.run(tiny_workload).net
        rebuilt = type(net).from_dict(net.to_dict())
        assert rebuilt.to_dict() == net.to_dict()
        assert all(len(port.timeline) <= 32 for port in net.ports.values())

    def test_finalize_is_deterministic(self, tiny_workload, tiny_system):
        def run_once():
            system = create_system("pifs-rec", tiny_system).set_engine("packet")
            system.set_packet_config(PacketConfig(capacity=2, seed=9))
            return system.run(tiny_workload).net.to_dict()

        assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Satellite: fault mutators compose with the packet tier
# ---------------------------------------------------------------------------
class TestFaultComposition:
    def _run(self, name, config, workload, *, faults=(), packet=None):
        system = create_system(name, config).set_engine("packet")
        system.set_packet_config(packet or PacketConfig())
        if faults:
            system.set_session_mutators(tuple(fault.apply for fault in faults))
        return system.run(workload)

    def test_link_degradation_changes_queue_occupancy(self, tiny_workload, tiny_system):
        """A degraded link is slower *and* its port queue fills deeper: the
        mutator runs before the fabric attaches, so credits are held for
        the degraded (longer) flight time, raising backpressure."""
        packet = PacketConfig(capacity=2)
        healthy = self._run("recnmp", tiny_system, tiny_workload, packet=packet)
        fault = LinkDegradation(bandwidth_scale=0.25, extra_latency_ns=200.0)
        degraded = self._run(
            "recnmp", tiny_system, tiny_workload, faults=(fault,), packet=packet
        )
        assert degraded.total_ns > healthy.total_ns
        assert degraded.net.backpressure_ns > healthy.net.backpressure_ns

    def test_hop_degradation_rides_the_hop_channel(self, tiny_model, tiny_system):
        """degrade_hops + packet tier: the inter-switch hop channel queue
        observes the degraded hop latency."""
        from repro.config import WorkloadConfig
        from repro.traces.workload import build_workload

        config = replace(tiny_system, num_hosts=2, num_fabric_switches=2)
        workload = build_workload(
            WorkloadConfig(
                model=tiny_model, batch_size=4, num_batches=2, pooling_factor=8, seed=13
            ),
            num_hosts=2,
        )
        packet = PacketConfig(capacity=1)
        healthy = self._run("pifs-rec", config, workload, packet=packet)
        fault = HopDegradation(extra_hop_ns=500.0)
        degraded = self._run("pifs-rec", config, workload, faults=(fault,), packet=packet)
        assert "fabric.hop" in healthy.net.ports
        assert degraded.total_ns > healthy.total_ns
        hop_healthy = healthy.net.ports["fabric.hop"]
        hop_degraded = degraded.net.ports["fabric.hop"]
        # Longer hop flight times hold the single credit longer.
        assert hop_degraded.backpressure_ns >= hop_healthy.backpressure_ns

    def test_uncongested_fault_run_matches_scalar(self, tiny_workload, tiny_system):
        """Faults + unbounded packet tier still equals faults + scalar."""
        fault = LinkDegradation(bandwidth_scale=0.5, extra_latency_ns=100.0)
        scalar_system = create_system("pifs-rec", tiny_system)
        scalar_system.set_session_mutators((fault.apply,))
        scalar = scalar_system.run(tiny_workload)
        packet = self._run("pifs-rec", tiny_system, tiny_workload, faults=(fault,))
        scalar_dict = scalar.to_dict()
        packet_dict = packet.to_dict()
        scalar_dict.pop("net", None)
        packet_dict.pop("net", None)
        assert scalar_dict == packet_dict
