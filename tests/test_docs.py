"""Documentation health: markdown links resolve, CLI --help is informative.

Run by the CI docs job (and tier-1): a broken relative link in README or
docs/, or a subcommand whose ``--help`` loses its examples/descriptions,
fails here rather than silently rotting.
"""

import pathlib
import re

import pytest

from repro.api.cli import build_parser

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) — excluding images; targets may carry #anchors.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

SUBCOMMANDS = ("run", "sweep", "serve", "compare", "figures", "systems")


def _markdown_files():
    files = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))
    assert files, "no markdown files found"
    return files


class TestMarkdownLinks:
    def test_docs_tree_exists(self):
        assert (ROOT / "docs" / "ARCHITECTURE.md").is_file()
        assert (ROOT / "docs" / "PERFORMANCE.md").is_file()

    @pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: str(p.relative_to(ROOT)))
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _LINK.findall(path.read_text(encoding="utf-8")):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {path.name}: {broken}"


class TestCLIHelp:
    @pytest.fixture(scope="class")
    def parser(self):
        return build_parser()

    def test_every_subcommand_registered(self, parser):
        actions = {
            name
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
            for name in action.choices
        }
        assert set(SUBCOMMANDS) <= actions

    @pytest.mark.parametrize("command", SUBCOMMANDS)
    def test_help_renders_and_describes(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"python -m repro {command}" in out
        # Every help screen must explain itself beyond the usage line.
        assert len(out.splitlines()) > 8, f"'{command} --help' is too terse"

    @pytest.mark.parametrize("command", ["run", "sweep", "compare", "serve"])
    def test_engine_knob_documented(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([command, "--help"])
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "vector" in out

    @pytest.mark.parametrize("command", ["run", "sweep", "serve", "compare"])
    def test_examples_present(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([command, "--help"])
        out = capsys.readouterr().out
        assert "examples:" in out, f"'{command} --help' lost its examples section"
