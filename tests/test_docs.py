"""Documentation health: links resolve, CLI --help informative, API.md true.

Run by the CI docs job (and tier-1): a broken relative link in README or
docs/, a subcommand whose ``--help`` loses its examples/descriptions, or an
API.md entry naming a symbol that no longer exists (or lost its docstring)
fails here rather than silently rotting.
"""

import importlib
import pathlib
import re

import pytest

from repro.api.cli import build_parser

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) — excluding images; targets may carry #anchors.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: API.md documents symbols as headings of the form ``### `repro.x.Y` ``.
_API_SYMBOL = re.compile(r"^#{2,4} +`(repro(?:\.[A-Za-z0-9_]+)+)`", re.MULTILINE)

SUBCOMMANDS = (
    "run", "sweep", "serve", "compare", "figures", "bench", "scenario",
    "systems", "trace", "fleet",
)

#: The documents the docs tree promises (README links them all).
DOCS_PAGES = (
    "ARCHITECTURE.md", "PERFORMANCE.md", "SCENARIOS.md",
    "OBSERVABILITY.md", "API.md",
)


def _markdown_files():
    files = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))
    assert files, "no markdown files found"
    return files


class TestMarkdownLinks:
    @pytest.mark.parametrize("page", DOCS_PAGES)
    def test_docs_tree_exists(self, page):
        assert (ROOT / "docs" / page).is_file()

    @pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: str(p.relative_to(ROOT)))
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _LINK.findall(path.read_text(encoding="utf-8")):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {path.name}: {broken}"

    def test_readme_links_every_docs_page(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        missing = [page for page in DOCS_PAGES if f"docs/{page}" not in readme]
        assert not missing, f"README does not link: {missing}"


def _api_symbols():
    text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    symbols = _API_SYMBOL.findall(text)
    assert len(symbols) >= 20, "API.md lost its symbol headings"
    return symbols


def _resolve(symbol: str):
    """Import the longest module prefix, then getattr the rest."""
    parts = symbol.split(".")
    module = None
    rest = []
    for i in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:i]))
            rest = parts[i:]
            break
        except ImportError:
            continue
    assert module is not None, f"no importable module prefix in {symbol!r}"
    obj = module
    for name in rest:
        obj = getattr(obj, name)
    return obj


class TestAPIReference:
    """Every symbol API.md documents exists and is itself documented."""

    @pytest.mark.parametrize("symbol", _api_symbols())
    def test_symbol_exists_and_documented(self, symbol):
        obj = _resolve(symbol)
        doc = getattr(obj, "__doc__", None)
        assert doc and doc.strip(), f"{symbol} has no docstring"

    def test_core_surface_is_covered(self):
        """API.md must keep documenting the load-bearing entry points."""
        symbols = set(_api_symbols())
        required = {
            "repro.api.Simulation",
            "repro.api.Sweep",
            "repro.api.register_system",
            "repro.scenarios.Scenario",
            "repro.scenarios.register_scenario",
        }
        assert required <= symbols, f"API.md lost: {sorted(required - symbols)}"


class TestCLIHelp:
    @pytest.fixture(scope="class")
    def parser(self):
        return build_parser()

    def test_every_subcommand_registered(self, parser):
        actions = {
            name
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
            for name in action.choices
        }
        assert set(SUBCOMMANDS) <= actions

    @pytest.mark.parametrize("command", SUBCOMMANDS)
    def test_help_renders_and_describes(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"python -m repro {command}" in out
        # Every help screen must explain itself beyond the usage line.
        assert len(out.splitlines()) > 8, f"'{command} --help' is too terse"

    @pytest.mark.parametrize("command", ["run", "sweep", "compare", "serve"])
    def test_engine_knob_documented(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([command, "--help"])
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "vector" in out

    @pytest.mark.parametrize("command", ["run", "sweep", "serve", "compare", "scenario", "trace"])
    def test_examples_present(self, command, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([command, "--help"])
        out = capsys.readouterr().out
        assert "examples:" in out, f"'{command} --help' lost its examples section"

    @pytest.mark.parametrize("subcommand", ["list", "run", "compare"])
    def test_scenario_subcommands(self, subcommand, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["scenario", subcommand, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5, f"'scenario {subcommand} --help' is too terse"

    @pytest.mark.parametrize("subcommand", ["run", "serve", "scenario"])
    def test_trace_subcommands(self, subcommand, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["trace", subcommand, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--out" in out, f"'trace {subcommand} --help' lost its export flag"
        assert len(out.splitlines()) > 5, f"'trace {subcommand} --help' is too terse"

    def test_log_level_documented(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "--log-level" in capsys.readouterr().out
