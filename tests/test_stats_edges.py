"""Edge cases of the stats containers: empty digests, exhausted retries,
degenerate latency streams.

The JSON round-trip contract (``to_dict`` / ``from_dict``) must hold at the
boundaries the happy-path suites never visit: ports that saw no traffic,
drop-mode queues that burned through ``max_retries`` and were force-admitted,
and latency summaries built from zero or one sample.
"""

import json
import math

from repro.cxl.protocol import MemOpcode
from repro.net import PortQueue
from repro.net.stats import NetStats, PortStats
from repro.sls.result import LatencyStats


# ---------------------------------------------------------------------------
# PortStats / NetStats round trips
# ---------------------------------------------------------------------------
class TestPortStatsRoundTrip:
    def test_empty_port(self):
        """A port that saw no traffic survives the JSON round trip intact."""
        port = PortStats(name="cxl0.dsp")
        clone = PortStats.from_dict(json.loads(json.dumps(port.to_dict())))
        assert clone == port
        assert not clone.congested
        assert clone.flows == {}
        assert clone.timeline == []

    def test_minimal_dict_fills_defaults(self):
        port = PortStats.from_dict({"name": "host0.usp"})
        assert port.packets == 0
        assert port.backpressure_ns == 0.0
        assert port.timeline == []

    def test_timeline_points_survive(self):
        port = PortStats(name="p", packets=2, timeline=[[0.0, 1], [5.0, 0]])
        clone = PortStats.from_dict(port.to_dict())
        assert clone.timeline == [[0.0, 1], [5.0, 0]]


class TestNetStatsRoundTrip:
    def test_empty_fabric(self):
        """No ports at all: the digest is uncongested and round-trips."""
        net = NetStats(seed=7)
        clone = NetStats.from_dict(json.loads(json.dumps(net.to_dict())))
        assert clone == net
        assert not clone.congested
        assert clone.congested_ports() == []

    def test_ports_accept_instances_and_dicts(self):
        port = PortStats(name="p", drops=2)
        from_instance = NetStats.from_dict({"ports": {"p": port}})
        from_dict = NetStats.from_dict({"ports": {"p": port.to_dict()}})
        assert from_instance.ports["p"] == from_dict.ports["p"]
        assert from_instance.congested_ports() == ["p"]


# ---------------------------------------------------------------------------
# Drop mode with retries exhausted
# ---------------------------------------------------------------------------
class TestDropRetriesExhausted:
    def _saturated_queue(self, max_retries: int) -> PortQueue:
        """One credit, held until far in the future by an in-flight packet."""
        queue = PortQueue(
            "dev0.dsp", capacity=1, drop=True, retry_ns=100.0, max_retries=max_retries
        )
        queue.depart(0.0, 0.0, 1e9, 64, MemOpcode.MEM_RD)
        return queue

    def test_forced_admission_after_max_retries(self):
        """The retry loop gives up after ``max_retries`` and admits anyway —
        sessions always make progress even against a wedged credit."""
        queue = self._saturated_queue(max_retries=3)
        admitted = queue.admit(0.0, MemOpcode.MEM_RD)
        assert admitted == 3 * 100.0
        assert queue.drops == 3
        assert queue.retries == 3

    def test_exhausted_counters_round_trip(self):
        queue = self._saturated_queue(max_retries=2)
        admitted = queue.admit(10.0, MemOpcode.MEM_RD)
        queue.depart(10.0, admitted, admitted + 50.0, 64, MemOpcode.MEM_RD)

        port = PortStats(
            name=queue.name,
            packets=queue.packets,
            drops=queue.drops,
            retries=queue.retries,
            backpressure_ns=queue.backpressure_ns,
        )
        net = NetStats(drops=port.drops, retries=port.retries, ports={port.name: port})
        clone = NetStats.from_dict(json.loads(json.dumps(net.to_dict())))
        assert clone == net
        assert clone.congested
        assert clone.congested_ports() == [queue.name]
        assert clone.ports[queue.name].drops == 2
        assert clone.ports[queue.name].retries == 2
        # The forced admission stalled the sender by the full retry budget.
        assert clone.ports[queue.name].backpressure_ns == 2 * 100.0


# ---------------------------------------------------------------------------
# LatencyStats on degenerate streams
# ---------------------------------------------------------------------------
class TestLatencyStatsEdges:
    def test_zero_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean_ns == 0.0
        assert stats.p50_ns == 0.0
        assert stats.p999_ns == 0.0
        assert stats.is_finite()
        assert stats.quantile("p99") == 0.0

    def test_one_sample_collapses_every_percentile(self):
        stats = LatencyStats.from_samples([1234.5])
        assert stats.count == 1
        for label in ("mean", "min", "max", "p50", "p90", "p95", "p99", "p999"):
            assert stats.quantile(label) == 1234.5

    def test_zero_and_one_sample_round_trip(self):
        for samples in ([], [42.0]):
            stats = LatencyStats.from_samples(samples)
            clone = LatencyStats.from_dict(json.loads(json.dumps(stats.to_dict())))
            assert clone == stats

    def test_unknown_quantile_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown latency quantile"):
            LatencyStats.from_samples([1.0]).quantile("p42")

    def test_percentiles_stay_finite_and_ordered(self):
        stats = LatencyStats.from_samples([5.0, 1.0])
        assert stats.min_ns == 1.0 and stats.max_ns == 5.0
        assert stats.p50_ns <= stats.p90_ns <= stats.p99_ns <= stats.p999_ns
        assert all(
            math.isfinite(stats.quantile(label))
            for label in ("p50", "p90", "p95", "p99", "p999")
        )
