"""Tests for the CXL substrate (repro.cxl)."""

import pytest

from repro.config import CXLConfig, DDR4_CXL_CONFIG
from repro.cxl.bias_table import BiasMode, BiasTable
from repro.cxl.device import CXLType3Device
from repro.cxl.fabric_manager import FabricManager
from repro.cxl.link import CXLLink
from repro.cxl.protocol import CXLMemM2S, MemOpcode, is_pifs_opcode
from repro.cxl.switch import FabricSwitch
from repro.cxl.topology import FabricTopology


class TestProtocol:
    def test_pifs_opcodes(self):
        assert is_pifs_opcode(MemOpcode.PIFS_DATA_FETCH)
        assert is_pifs_opcode(MemOpcode.PIFS_CONFIG)
        assert not is_pifs_opcode(MemOpcode.MEM_RD)

    def test_message_ids_unique(self):
        a = CXLMemM2S(opcode=MemOpcode.MEM_RD, address=0, spid=1)
        b = CXLMemM2S(opcode=MemOpcode.MEM_RD, address=0, spid=1)
        assert a.message_id != b.message_id

    def test_is_pifs_flag(self):
        msg = CXLMemM2S(opcode=MemOpcode.PIFS_CONFIG, address=0, spid=1)
        assert msg.is_pifs()


class TestLink:
    def test_transfer_includes_serialization_and_propagation(self):
        link = CXLLink(bandwidth_gbps=64.0, propagation_ns=10.0)
        finish = link.transfer(640, start_ns=0.0)
        assert finish == pytest.approx(640 / 64.0 + 10.0)

    def test_back_to_back_transfers_queue(self):
        link = CXLLink(bandwidth_gbps=1.0, propagation_ns=0.0)
        first = link.transfer(100, 0.0)
        second = link.transfer(100, 0.0)
        assert second == pytest.approx(first + 100.0)
        assert link.total_queue_delay_ns == pytest.approx(100.0)

    def test_utilization_bounded(self):
        link = CXLLink(bandwidth_gbps=10.0)
        link.transfer(1000, 0.0)
        assert 0.0 < link.utilization(1000.0) <= 1.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            CXLLink(bandwidth_gbps=0.0)

    def test_reset(self):
        link = CXLLink(bandwidth_gbps=10.0)
        link.transfer(100, 0.0)
        link.reset()
        assert link.bytes_transferred == 0
        assert link.transfers == 0


class TestBiasTable:
    def test_default_host_bias_pays_penalty(self):
        table = BiasTable()
        assert table.mode(0) is BiasMode.HOST
        assert table.device_access_penalty_ns(0) > 0

    def test_device_bias_has_no_penalty(self):
        table = BiasTable()
        table.set_mode(0, BiasMode.DEVICE, length_bytes=8192)
        assert table.mode(4095) is BiasMode.DEVICE
        assert table.device_access_penalty_ns(100) == 0.0

    def test_region_boundaries(self):
        table = BiasTable()
        table.set_mode(0, BiasMode.DEVICE, length_bytes=4096)
        assert table.mode(4096) is BiasMode.HOST

    def test_flip_counter(self):
        table = BiasTable()
        table.set_mode(0, BiasMode.DEVICE)
        table.set_mode(0, BiasMode.HOST)
        table.set_mode(0, BiasMode.HOST)
        assert table.flips == 2


class TestFabricManager:
    def test_bind_assigns_unique_cache_ids(self):
        fm = FabricManager()
        a = fm.bind(0, "host0", "host")
        b = fm.bind(1, "dev0", "type3")
        assert a.cache_id != b.cache_id

    def test_duplicate_port_rejected(self):
        fm = FabricManager()
        fm.bind(0, "host0", "host")
        with pytest.raises(ValueError):
            fm.bind(0, "host1", "host")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FabricManager().bind(0, "x", "gpu")

    def test_devices_and_hosts_filters(self):
        fm = FabricManager()
        fm.bind(0, "host0", "host")
        fm.bind(1, "dev0", "type3")
        fm.bind(2, "dev1", "type3")
        assert len(fm.devices()) == 2
        assert len(fm.hosts()) == 1

    def test_unbind(self):
        fm = FabricManager()
        fm.bind(0, "host0", "host")
        fm.unbind(0)
        assert fm.binding_for_port(0) is None
        with pytest.raises(KeyError):
            fm.unbind(0)


class TestType3Device:
    def test_access_slower_than_raw_dram(self):
        cxl = CXLConfig()
        device = CXLType3Device(0, DDR4_CXL_CONFIG, cxl)
        finish = device.access(0, 0.0, bytes_requested=64)
        raw = device.dram.controller.average_latency_ns()
        assert finish > raw  # link + controller penalty on top of the media

    def test_read_write_counters(self):
        device = CXLType3Device(0, DDR4_CXL_CONFIG, CXLConfig())
        device.access(0, 0.0)
        device.access(64, 0.0, is_write=True)
        assert device.reads == 1
        assert device.writes == 1

    def test_reset(self):
        device = CXLType3Device(0, DDR4_CXL_CONFIG, CXLConfig())
        device.access(0, 0.0)
        device.reset()
        assert device.reads == 0


class TestFabricSwitch:
    def _build(self, devices=2):
        switch = FabricSwitch(CXLConfig())
        for i in range(devices):
            switch.attach_device(CXLType3Device(i, DDR4_CXL_CONFIG, CXLConfig()))
        port = switch.attach_host("host0")
        return switch, port

    def test_host_read_roundtrip(self):
        switch, port = self._build()
        finish = switch.host_read(port, device_id=0, address=0, issue_ns=0.0)
        assert finish > 100.0  # includes the CXL access penalty
        assert switch.forwarded_requests == 1

    def test_host_read_includes_cxl_penalty(self):
        switch, port = self._build()
        finish = switch.host_read(port, 0, 0, issue_ns=0.0)
        assert finish >= CXLConfig().access_penalty_ns / 2

    def test_devices_listed(self):
        switch, _ = self._build(devices=3)
        assert [d.device_id for d in switch.devices()] == [0, 1, 2]

    def test_unknown_port_raises(self):
        switch, _ = self._build()
        with pytest.raises(KeyError):
            switch._device_for_port(999)

    def test_reset_clears_counters(self):
        switch, port = self._build()
        switch.host_read(port, 0, 0, 0.0)
        switch.reset()
        assert switch.forwarded_requests == 0


class TestTopology:
    def test_fully_connected(self):
        topo = FabricTopology(4, CXLConfig())
        assert topo.are_connected(0, 3)
        assert topo.hop_count(0, 3) == 1

    def test_hop_latency(self):
        cxl = CXLConfig()
        topo = FabricTopology(3, cxl)
        assert topo.hop_latency_ns(0, 2) == pytest.approx(cxl.inter_switch_hop_ns)
        assert topo.hop_latency_ns(1, 1) == 0.0

    def test_ring_topology_multi_hop(self):
        topo = FabricTopology(4, CXLConfig(), fully_connected=False)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        topo.add_link(2, 3)
        assert topo.hop_count(0, 3) == 3

    def test_disconnected_raises(self):
        topo = FabricTopology(2, CXLConfig(), fully_connected=False)
        with pytest.raises(ValueError):
            topo.hop_count(0, 1)

    def test_self_link_rejected(self):
        topo = FabricTopology(2, CXLConfig(), fully_connected=False)
        with pytest.raises(ValueError):
            topo.add_link(0, 0)

    def test_out_of_range(self):
        topo = FabricTopology(2, CXLConfig())
        with pytest.raises(ValueError):
            topo.neighbors(5)
