"""The ``repro.obs`` signal plane: recorders, exports, and the no-perturb pin.

Four layers of guarantees:

* the :class:`~repro.obs.recorder.TraceRecorder` surface — spans, instants,
  counter samples, flat counters, wall-clock phases, the event cap, worker
  snapshot/merge — and the Chrome ``trace_event`` export it feeds;
* **recording never perturbs results**: every engine tier (scalar, vector,
  packet) and the serve path produce bit-identical outcomes with recording
  off and on (the recorder only receives timestamps the simulation already
  computed);
* the façade wiring: ``Simulation.observe`` bypasses the result cache,
  ``RunResult.obs`` carries the digest through the JSON round trip, and
  sweeps merge worker-side recordings with per-pid attribution;
* the ``repro`` logging namespace: ``warn_once`` dedup and level setup.
"""

import json

import pytest

from harness import assert_run_identical, assert_serve_identical
from repro.api.session import Simulation, clear_cache
from repro.api.sweep import Sweep
from repro.api.results import RunResult
from repro.net.fabric import PacketConfig
from repro.serve.server import ServeConfig
from repro.obs.log import get_logger, reset_warnings, setup_logging, warn_once
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    validate_chrome_trace,
)

QUICK = dict(quick=True)


def quick_sim(system="pond", **settings):
    return Simulation(system, **settings).quick()


# ---------------------------------------------------------------------------
# Recorder surface
# ---------------------------------------------------------------------------
class TestNullRecorder:
    def test_disabled_and_inert(self):
        obs = NullRecorder()
        assert obs.enabled is False
        obs.span("x", 0.0, 1.0)
        obs.instant("x", 0.0)
        obs.counter("x", 0.0, 1.0)
        obs.count("x")
        obs.add("x", 2.0)
        obs.merge({"events": [["sim", "X", "x", 0, 1, "t", "c", None]]})
        with obs.phase("anything"):
            pass

    def test_shared_singleton(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_phase_context_is_shared(self):
        obs = NullRecorder()
        assert obs.phase("a") is obs.phase("b")


class TestTraceRecorder:
    def test_span_clamps_negative_duration(self):
        rec = TraceRecorder()
        rec.span("s", 10.0, 5.0)
        (_, ph, name, ts, dur, _, _, _) = rec.events()[0]
        assert (ph, name, ts, dur) == ("X", "s", 10.0, 0.0)

    def test_counters_accumulate_and_sort(self):
        rec = TraceRecorder()
        rec.count("b")
        rec.count("b", 2)
        rec.add("a", 0.5)
        assert rec.metrics() == {"a": 0.5, "b": 3}
        assert list(rec.metrics()) == ["a", "b"]

    def test_counter_samples_are_events_not_metrics(self):
        rec = TraceRecorder()
        rec.counter("qdepth.p0", 100.0, 3)
        assert len(rec) == 1
        assert rec.metrics() == {}

    def test_event_cap_counts_dropped(self):
        rec = TraceRecorder(max_events=2)
        for i in range(5):
            rec.instant("i", float(i))
        assert len(rec) == 2
        assert rec.dropped == 3
        rec.count("still.counted")  # flat counters are never capped
        assert rec.metrics() == {"still.counted": 1}

    def test_phase_records_wall_span_and_metric(self):
        rec = TraceRecorder()
        with rec.phase("build"):
            pass
        (process, ph, name, _, _, track, cat, _) = rec.events()[0]
        assert (process, ph, name, track, cat) == ("wall", "X", "build", "phases", "phase")
        assert "phase.build_ms" in rec.metrics()

    def test_clear_resets_everything(self):
        rec = TraceRecorder(max_events=1)
        rec.instant("a", 0.0)
        rec.instant("b", 0.0)
        rec.count("c")
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0 and rec.metrics() == {}

    def test_snapshot_merge_rekeys_and_sums(self):
        worker = TraceRecorder(label="chunk")
        worker.span("request", 0.0, 5.0, track="host0")
        with worker.phase("sweep.chunk"):
            pass
        worker.count("engine.requests", 4)

        parent = TraceRecorder()
        parent.count("engine.requests", 1)
        parent.merge(worker.snapshot(), process="worker-123")

        processes = {event[0] for event in parent.events()}
        # Sim-time events land under worker-123:sim, wall phases under worker-123.
        assert processes == {"worker-123:sim", "worker-123"}
        assert parent.metrics()["engine.requests"] == 5

    def test_merge_accepts_none_and_adds_dropped(self):
        parent = TraceRecorder()
        parent.merge(None)
        parent.merge({"events": [], "counters": {}, "dropped": 7})
        assert len(parent) == 0
        assert parent.dropped == 7

    def test_report_digest(self):
        rec = TraceRecorder(label="lbl")
        rec.instant("i", 0.0)
        rec.count("c")
        report = rec.report()
        assert report == {"label": "lbl", "events": 1, "dropped": 0, "metrics": {"c": 1}}


class TestChromeExport:
    def _recorder(self):
        rec = TraceRecorder(label="t")
        rec.span("request", 100.0, 400.0, track="host0", cat="sim", args={"id": 1})
        rec.counter("qdepth.p0", 150.0, 2)
        rec.instant("drop", 200.0, track="net.p0")
        with rec.phase("execute"):
            pass
        return rec

    def test_trace_event_shapes(self):
        trace = self._recorder().to_chrome_trace()
        events = trace["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        span = by_ph["X"][0]
        assert span["ts"] == 0.1 and span["dur"] == 0.3  # ns -> us
        assert span["args"] == {"id": 1}
        counter = by_ph["C"][0]
        assert counter["args"] == {"value": 2.0}
        assert by_ph["i"][0]["s"] == "t"
        # Metadata names both time-domain processes.
        names = {e["args"]["name"] for e in by_ph["M"] if e["name"] == "process_name"}
        assert names == {"simulated time", "wall clock"}
        assert trace["otherData"]["label"] == "t"

    def test_distinct_tracks_get_distinct_tids(self):
        rec = TraceRecorder()
        rec.span("a", 0.0, 1.0, track="host0")
        rec.span("b", 0.0, 1.0, track="host1")
        trace = rec.to_chrome_trace()
        tids = {
            (e["pid"], e["tid"]) for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert len(tids) == 2

    def test_validator_passes_good_trace(self):
        assert validate_chrome_trace(self._recorder().to_chrome_trace()) == []

    def test_validator_catches_problems(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_ts = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": "soon", "dur": 1}
        ]}
        assert validate_chrome_trace(bad_ts) != []

    def test_file_round_trip(self, tmp_path):
        rec = self._recorder()
        path = rec.write_chrome_trace(str(tmp_path / "trace.json"))
        assert validate_chrome_trace(json.load(open(path))) == []
        metrics_path = rec.write_metrics_json(str(tmp_path / "m.json"))
        assert json.load(open(metrics_path))["metrics"] == rec.metrics()
        csv_path = rec.write_metrics_csv(str(tmp_path / "m.csv"))
        lines = open(csv_path).read().strip().splitlines()
        assert lines[0] == "metric,value"
        assert len(lines) == 1 + len(rec.metrics())


# ---------------------------------------------------------------------------
# Recording never perturbs results
# ---------------------------------------------------------------------------
class TestNoPerturbation:
    """Recording (and streaming) must never change a single output value.

    The diff harness drives the full ``(streaming, observe)`` grid for
    each case, so these three tests pin the whole cross product, not just
    observed-vs-plain: SimResult, backend state, NetStats and latency
    records all bit-identical.
    """

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_engines_bit_identical_under_recording(self, engine):
        assert_run_identical(
            quick_sim("pond").spec(), engines=(engine,), observe=(False, True)
        )

    def test_packet_tier_bit_identical_under_recording(self):
        # A *congested* fabric (2-credit buffers): backpressure must come
        # from the credit model, never from the recorder's presence.
        spec = quick_sim("recnmp").packet(PacketConfig(capacity=2)).spec()
        fingerprints = assert_run_identical(
            spec, engines=("packet",), observe=(False, True)
        )
        assert fingerprints["packet"]["net"]["backpressure_ns"] > 0.0

    def test_serve_bit_identical_under_recording(self):
        assert_serve_identical(
            quick_sim("pond").spec(),
            ServeConfig(qps=2e5, seed=7),
            engines=("vector",),
            observe=(False, True),
        )


# ---------------------------------------------------------------------------
# Façade wiring
# ---------------------------------------------------------------------------
class TestSimulationObserve:
    def test_observe_defaults_to_fresh_trace_recorder(self):
        sim = quick_sim().observe()
        assert isinstance(sim.recorder, TraceRecorder)
        assert quick_sim().recorder is None

    def test_observe_false_detaches(self):
        sim = quick_sim().observe()
        assert sim.observe(False).recorder is None

    def test_clone_shares_recorder(self):
        sim = quick_sim().observe()
        assert sim.clone().recorder is sim.recorder

    def test_observed_run_bypasses_result_cache(self):
        clear_cache()
        base = quick_sim("pond")
        warm = base.clone().run()  # populate the cache
        observed = base.clone().observe().run()
        # A cache hit would have recorded nothing; the digest proves a
        # genuine re-execution landed on the recorder.
        assert observed.obs is not None and observed.obs["events"] > 0
        assert observed.total_ns == warm.total_ns

    def test_obs_digest_round_trips_with_runresult(self):
        observed = quick_sim("pond").observe().run()
        clone = RunResult.from_json(observed.to_json())
        assert clone.obs == observed.obs
        # Unobserved results keep a clean payload (no obs key at all).
        plain = quick_sim("pond").run(cache=False)
        assert plain.obs is None and "obs" not in plain.to_dict()

    def test_digest_carries_phases_and_engine_counters(self):
        observed = quick_sim("pond").engine("vector").observe().run(cache=False)
        metrics = observed.obs["metrics"]
        assert "phase.engine.execute_ms" in metrics
        assert metrics["engine.requests"] > 0
        assert metrics["engine.local_rows"] + metrics["engine.cxl_rows"] > 0

    def test_traced_serve_emits_batch_spans_and_queue_depths(self):
        recorder = TraceRecorder()
        quick_sim("pond").observe(recorder).serve(2e5, seed=7)
        names = {event[2] for event in recorder.events()}
        assert {"batch", "request", "session"} <= names
        assert any(name.startswith("queue.host") for name in names)
        assert recorder.metrics()["serve.batches"] > 0

    def test_packet_bridge_emits_xfer_and_backpressure(self):
        recorder = TraceRecorder()
        run = (
            quick_sim("recnmp")
            .packet(PacketConfig(capacity=1))
            .observe(recorder)
            .run(cache=False)
        )
        names = {event[2] for event in recorder.events()}
        assert "xfer" in names
        assert "backpressure" in names  # capacity=1 must stall somewhere
        assert any(name.startswith("qdepth.") for name in names)
        assert recorder.metrics()["net.packets"] == run.sim.net.packets


class TestSweepRecording:
    def _sweep(self):
        return Sweep({"system": ["pond", "beacon"]}, base=quick_sim())

    def test_serial_sweep_counts_cache_traffic(self):
        clear_cache()
        recorder = TraceRecorder()
        first = self._sweep().run(parallel=False, recorder=recorder)
        assert recorder.metrics()["cache.result.misses"] == len(first)
        again = self._sweep().run(parallel=False, recorder=recorder)
        assert recorder.metrics()["cache.result.hits"] == len(again)

    def test_recorded_sweep_matches_unrecorded(self):
        clear_cache()
        plain = self._sweep().run(parallel=False, cache=False)
        clear_cache()
        recorded = self._sweep().run(
            parallel=False, cache=False, recorder=TraceRecorder()
        )
        assert [r.sim.to_dict() for r in recorded] == [r.sim.to_dict() for r in plain]

    def test_parallel_sweep_merges_worker_recordings(self):
        clear_cache()
        recorder = TraceRecorder()
        results = self._sweep().run(parallel=True, processes=2, recorder=recorder)
        assert len(results) == 2
        assert recorder.metrics()["sweep.chunks"] >= 1
        worker_processes = {
            event[0] for event in recorder.events() if event[0].startswith("worker-")
        }
        assert worker_processes  # pid-attributed tracks arrived from workers
        assert all(process.split(":")[0].startswith("worker-") for process in worker_processes)

    def test_base_session_recorder_is_picked_up(self):
        clear_cache()
        recorder = TraceRecorder()
        Sweep({"system": ["pond"]}, base=quick_sim().observe(recorder)).run(
            parallel=False
        )
        assert recorder.metrics()["cache.result.misses"] == 1


# ---------------------------------------------------------------------------
# Logging namespace
# ---------------------------------------------------------------------------
class TestLogging:
    def test_loggers_are_repro_namespaced(self):
        assert get_logger().name == "repro"
        assert get_logger("net.fabric").name == "repro.net.fabric"

    def test_setup_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging("loud")

    def test_warn_once_deduplicates(self):
        reset_warnings()
        assert warn_once("obs.test-key", "message %s", 1) is True
        assert warn_once("obs.test-key", "message %s", 2) is False
        reset_warnings()
        assert warn_once("obs.test-key", "message %s", 3) is True
