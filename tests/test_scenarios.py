"""The scenario subsystem: registry, composition, faults, determinism, CLI.

Engine bit-identity for scenarios lives in test_engine_equivalence.py; this
file covers the scenario layer itself — the catalog resolves and runs, the
JSON round trip is lossless, faults degrade what they claim to degrade (and
nothing else), multi-tenant/drift workloads have the promised structure,
and the ``python -m repro scenario`` CLI drives it all.
"""

import json

import numpy as np
import pytest

from harness import serve_fingerprint, sim_fingerprint
from repro.api.cli import main as cli_main
from repro.api.session import Simulation, clear_cache
from repro.config import BufferConfig, DEFAULT_SYSTEM
from repro.cxl.topology import FabricTopology
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.scenarios import (
    BufferDegradation,
    DeviceDegradation,
    DriftWorkload,
    DuplicateScenarioError,
    HopDegradation,
    LinkDegradation,
    MultiTenantWorkload,
    Scenario,
    TenantSpec,
    TraceFileWorkload,
    TrafficSpec,
    UnknownScenarioError,
    available_scenarios,
    fault_from_dict,
    provider_from_dict,
    register_scenario,
    scenario,
    unregister_scenario,
)

#: Every scenario the starter catalog promises (ISSUE 5 wants >= 8).
CATALOG = (
    "paper-baseline",
    "zipfian-skew",
    "uniform-stress",
    "drift-rotation",
    "tenant-mix",
    "tenant-quad",
    "fault-slow-link",
    "fault-degraded-device",
    "fault-buffer-squeeze",
    "fabric-congested",
    "pooling-scaling",
    "table-scaling",
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_catalog_is_shipped(self):
        names = available_scenarios()
        assert len(names) >= 8
        assert set(CATALOG) <= set(names)

    def test_case_insensitive_resolution(self):
        assert scenario("PAPER-BASELINE").name == "paper-baseline"

    def test_unknown_scenario_suggests(self):
        with pytest.raises(UnknownScenarioError, match="paper-baseline"):
            scenario("paper-baselin")

    def test_register_and_unregister(self):
        custom = Scenario(name="test-custom", description="x", distribution="uniform")
        register_scenario(custom)
        try:
            assert scenario("test-custom") == custom
            with pytest.raises(DuplicateScenarioError):
                register_scenario(Scenario(name="test-custom", distribution="random"))
            register_scenario(
                Scenario(name="test-custom", distribution="random"), replace=True
            )
            assert scenario("test-custom").distribution == "random"
        finally:
            unregister_scenario("test-custom")
        with pytest.raises(UnknownScenarioError):
            scenario("test-custom")

    def test_decorator_factory_form(self):
        @register_scenario
        def _factory():
            return Scenario(name="test-factory", distribution="meta")

        try:
            assert scenario("test-factory").distribution == "meta"
        finally:
            unregister_scenario("test-factory")

    def test_non_scenario_rejected(self):
        with pytest.raises(TypeError):
            register_scenario("not-a-scenario")  # type: ignore[arg-type]

    def test_listing_uses_display_names(self):
        """Mixed-case registrations list under their own name, not the key."""
        register_scenario(Scenario(name="Test-MixedCase", distribution="meta"))
        try:
            assert "Test-MixedCase" in available_scenarios()
            assert "test-mixedcase" not in available_scenarios()
            assert scenario("test-mixedcase").name == "Test-MixedCase"
        finally:
            unregister_scenario("Test-MixedCase")


class TestScenarioDefinition:
    @pytest.mark.parametrize("name", CATALOG)
    def test_json_round_trip(self, name):
        entry = scenario(name)
        rebuilt = Scenario.from_json(entry.to_json())
        assert rebuilt == entry
        assert rebuilt.to_dict() == entry.to_dict()
        json.dumps(entry.to_dict())  # strictly JSON-safe

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            Scenario(name="bad", model="RMC9")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            Scenario(name="bad", axes=(("frequency", (1, 2)),))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            Scenario(name="bad", axes=(("pooling", ()),))

    def test_fault_round_trip_dispatch(self):
        for fault in (
            LinkDegradation(bandwidth_scale=0.5, devices=(1, 2)),
            DeviceDegradation(extra_read_ns=50.0),
            BufferDegradation(capacity_bytes=1024),
            HopDegradation(extra_hop_ns=10.0),
        ):
            assert fault_from_dict(fault.to_dict()) == fault
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "meteor-strike"})

    def test_provider_round_trip_dispatch(self):
        for provider in (
            TraceFileWorkload(path="x.npz"),
            DriftWorkload(period_batches=3),
            MultiTenantWorkload(
                tenants=(TenantSpec(name="a"), TenantSpec(name="b", model="RMC2"))
            ),
        ):
            assert provider_from_dict(provider.to_dict()) == provider
        with pytest.raises(ValueError, match="unknown workload provider"):
            provider_from_dict({"kind": "quantum"})

    def test_traffic_spec_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            TrafficSpec(arrival="possion")
        with pytest.raises(ValueError, match="qps must be positive"):
            TrafficSpec(qps=0.0)

    def test_invalid_fault_parameters(self):
        with pytest.raises(ValueError):
            LinkDegradation(bandwidth_scale=0.0)
        with pytest.raises(ValueError):
            DeviceDegradation(extra_read_ns=-1.0)
        with pytest.raises(ValueError):
            BufferDegradation(capacity_scale=1.5)
        with pytest.raises(ValueError):
            HopDegradation(extra_hop_ns=-5.0)

    def test_multi_tenant_validation(self):
        with pytest.raises(ValueError, match="at least two tenants"):
            MultiTenantWorkload(tenants=(TenantSpec(name="solo"),))
        with pytest.raises(ValueError, match="unknown tenant model"):
            TenantSpec(name="x", model="RMC99")
        with pytest.raises(ValueError, match="at least one host"):
            TenantSpec(name="x", hosts=0)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["paper-baseline", "fault-slow-link", "tenant-mix"])
    def test_same_seed_same_result(self, name):
        first = scenario(name).run(quick=True, cache=False)
        second = scenario(name).run(quick=True, cache=False)
        assert sim_fingerprint(first.sim) == sim_fingerprint(second.sim)

    def test_serve_deterministic(self):
        first = scenario("paper-baseline").serve(quick=True)
        second = scenario("paper-baseline").serve(quick=True)
        # Full fingerprint: latency stats, per-request records, sim + net.
        assert serve_fingerprint(first) == serve_fingerprint(second)
        assert first.goodput_qps == second.goodput_qps


class TestFaultEffects:
    def _baseline(self, system="pifs-rec"):
        return scenario("paper-baseline").run(quick=True, system=system, cache=False)

    def test_link_degradation_slows_fabric_traffic(self):
        degraded = scenario("fault-slow-link").run(quick=True, cache=False)
        assert degraded.total_ns > self._baseline().total_ns

    def test_device_degradation_slows_reads(self):
        degraded = scenario("fault-degraded-device").run(quick=True, cache=False)
        assert degraded.total_ns > self._baseline().total_ns

    def test_faults_compose(self):
        single = scenario("fault-slow-link").run(quick=True, cache=False)
        sim = scenario("fault-slow-link").simulation(quick=True)
        sim.faults(DeviceDegradation(extra_read_ns=500.0, devices=(0, 1, 2, 3)))
        both = sim.run(cache=False)
        assert both.total_ns > single.total_ns

    def test_fault_params_recorded(self):
        run = scenario("fault-slow-link").run(quick=True, cache=False)
        assert run.params["faults"] == ["link-degrade"]

    def test_link_degrade_scoped_to_devices(self):
        sim = Simulation("pifs-rec").quick().faults(
            LinkDegradation(bandwidth_scale=0.5, devices=(0,))
        )
        system = sim.build_system()
        system.begin_session(sim.build_workload())
        links = [device.link for device in system.backends.devices]
        assert links[0].bandwidth_gbps == pytest.approx(
            DEFAULT_SYSTEM.cxl.downstream_port_bandwidth_gbps * 0.5
        )
        for link in links[1:]:
            assert link.bandwidth_gbps == DEFAULT_SYSTEM.cxl.downstream_port_bandwidth_gbps

    def test_buffer_resize_semantics(self):
        buffer = OnSwitchBuffer(BufferConfig(capacity_bytes=1024, policy="lru"), row_bytes=256)
        for address in range(4):
            buffer.lookup(address * 256)
            buffer.insert(address * 256)
        assert buffer.occupancy == 4
        buffer.resize(512)  # 2 rows: evicts the 2 oldest residents
        assert buffer.capacity_rows == 2
        assert buffer.occupancy == 2
        assert buffer.evictions == 2

    def test_buffer_fault_applies_to_pifs_switch(self):
        sim = Simulation("pifs-rec").quick().faults(BufferDegradation(capacity_scale=0.25))
        system = sim.build_system()
        system.begin_session(sim.build_workload())
        expected = int(DEFAULT_SYSTEM.pifs.on_switch_buffer.capacity_bytes * 0.25)
        for switch in system.backends.switches:
            assert switch.buffer.config.capacity_bytes == expected

    def test_buffer_fault_noop_on_bufferless_system(self):
        run = (
            Simulation("pond")
            .quick()
            .faults(BufferDegradation(capacity_scale=0.25))
            .run(cache=False)
        )
        reference = Simulation("pond").quick().run(cache=False)
        assert sim_fingerprint(run.sim) == sim_fingerprint(reference.sim)

    def test_hop_degradation_changes_route_table(self):
        topology = FabricTopology(2, DEFAULT_SYSTEM.cxl)
        healthy = topology.hop_latency_ns(0, 1)
        topology.degrade_hops(400.0)
        assert topology.hop_latency_ns(0, 1) == healthy + 400.0

    def test_hop_degradation_slows_multi_switch_session(self):
        healthy = (
            scenario("fabric-congested")
            .simulation(quick=True)
            ._set(faults=())  # the same machine without the fault
            .run(cache=False)
        )
        degraded = scenario("fabric-congested").run(quick=True, cache=False)
        assert degraded.total_ns > healthy.total_ns


class TestWorkloadMixes:
    def test_multi_tenant_structure(self):
        entry = scenario("tenant-mix")
        sim = entry.simulation(quick=True)
        workload = sim.build_workload()
        provider = entry.workload
        assert isinstance(provider, MultiTenantWorkload)
        assert entry.resolved_hosts == provider.total_hosts == 2
        # Tenant 0 (RMC1) owns the low table range and host 0; tenant 1
        # (RMC3) the high range and host 1.
        scale = sim.spec().scale
        tables_0 = scale.model("RMC1").num_tables
        for request in workload.requests:
            if request.table < tables_0:
                assert request.host_id == 0
            else:
                assert request.host_id == 1
        assert {r.host_id for r in workload.requests} == {0, 1}
        assert workload.model.num_tables == tables_0 + scale.model("RMC3").num_tables

    def test_multi_tenant_host_mismatch_rejected(self):
        sim = scenario("tenant-mix").simulation(quick=True).hosts(5)
        with pytest.raises(ValueError, match="set .hosts"):
            sim.build_workload()

    def test_heterogeneous_embedding_dim_rejected(self):
        provider = MultiTenantWorkload(
            tenants=(
                TenantSpec(name="a", model="RMC1"),  # dim 64
                TenantSpec(name="b", model="RMC4"),  # dim 128
            )
        )
        sim = Simulation("pifs-rec").quick().hosts(2).workload_provider(provider)
        with pytest.raises(ValueError, match="embedding dimension"):
            sim.build_workload()

    def test_tenant_interleaving(self):
        """Batches interleave round-robin, so tenants contend throughout."""
        workload = scenario("tenant-mix").simulation(quick=True).build_workload()
        hosts = [request.host_id for request in workload.requests]
        first_half = hosts[: len(hosts) // 2]
        assert {0, 1} <= set(first_half)

    def test_drift_scenario_runs_with_provider_label(self):
        run = scenario("drift-rotation").run(quick=True, cache=False)
        assert run.params["workload"] == "drift:2"

    def test_workload_provider_distinct_cache_keys(self):
        """Provider workloads must not collide with generator workloads."""
        from repro.api.session import workload_key

        base = Simulation("pifs-rec").quick()
        drift = base.clone().workload_provider(DriftWorkload(period_batches=2))
        faster = base.clone().workload_provider(DriftWorkload(period_batches=4))
        keys = {
            workload_key(base.spec()),
            workload_key(drift.spec()),
            workload_key(faster.spec()),
        }
        assert len(keys) == 3

    def test_provider_requires_build(self):
        with pytest.raises(ValueError, match="build"):
            Simulation().workload_provider(object())

    def test_trace_file_cache_invalidates_on_overwrite(self, tmp_path):
        """An overwritten trace file must not be served stale from cache."""
        import numpy as np

        from repro.traces.files import save_trace
        from repro.traces.meta import TraceBatch

        def batch(value):
            return TraceBatch(
                indices_per_table=[np.asarray([value], dtype=np.int64)],
                offsets_per_table=[np.asarray([0], dtype=np.int64)],
            )

        path = tmp_path / "t.npz"
        save_trace([batch(1)], path)
        sim = Simulation("pifs-rec").quick().workload_provider(
            TraceFileWorkload(str(path))
        )
        first = sim.build_workload()
        assert first.requests[0].rows.tolist() == [1]
        import os

        save_trace([batch(2)], path)
        os.utime(path, ns=(1, 1))  # force a distinct mtime even on fast FS
        second = Simulation("pifs-rec").quick().workload_provider(
            TraceFileWorkload(str(path))
        ).build_workload()
        assert second.requests[0].rows.tolist() == [2]


class TestSweepIntegration:
    def test_scenario_axes_expand(self):
        sweep = scenario("pooling-scaling").sweep(systems=["pond", "pifs-rec"], quick=True)
        assert len(sweep) == 6  # 2 systems x 3 pooling values

    def test_tables_axis_rewrites_scale(self):
        sweep = scenario("table-scaling").sweep(quick=True)
        results = sweep.run(parallel=False)
        lookups = [run.sim.lookups for run in results]
        assert lookups == sorted(lookups) and lookups[0] < lookups[-1]

    def test_faulted_sweep_parallel_matches_serial(self):
        entry = scenario("fault-slow-link")
        serial = entry.sweep(systems=["pond", "pifs-rec"], quick=True).run(parallel=False)
        clear_cache()
        parallel = entry.sweep(systems=["pond", "pifs-rec"], quick=True).run(
            parallel=True, processes=2
        )
        assert [run.sim.to_dict() for run in serial] == [
            run.sim.to_dict() for run in parallel
        ]


class TestSessionIntegration:
    def test_run_scenario_by_name(self):
        run = Simulation("pond").quick().run_scenario("fault-slow-link")
        assert run.params["system"] == "pond"
        assert run.params["faults"] == ["link-degrade"]

    def test_scenario_keeps_scale_and_engine(self):
        sim = Simulation().quick().engine("vector").scenario("zipfian-skew")
        spec = sim.spec()
        assert spec.engine == "vector"
        assert spec.distribution == "zipfian"
        from repro.experiments.common import QUICK_SCALE

        assert spec.scale == QUICK_SCALE

    def test_explicit_system_survives_scenario(self):
        sim = Simulation("beacon").quick().scenario("fault-slow-link")
        assert sim.spec().system == "beacon"

    def test_explicit_default_system_override(self):
        """`--system pifs-rec` must win even against a non-default scenario system."""
        register_scenario(Scenario(name="test-pond-scn", system="pond"))
        try:
            assert scenario("test-pond-scn").simulation(quick=True).spec().system == "pond"
            sim = scenario("test-pond-scn").simulation(system="pifs-rec", quick=True)
            assert sim.spec().system == "pifs-rec"
        finally:
            unregister_scenario("test-pond-scn")

    def test_scenario_overwrites_leaked_workload_knobs(self):
        """A stale session setting must not leak into a named scenario run.

        Otherwise `sim.run_scenario(name)` and `python -m repro scenario
        run <name>` would silently compute different numbers for the same
        scenario name.
        """
        from dataclasses import replace

        sim = (
            Simulation()
            .quick()
            .distribution("uniform")
            .batch_size(2)
            .pooling(3)
            .devices(2)
            .local_capacity(4096)
            .options(page_management=False)
            .base_config(replace(DEFAULT_SYSTEM, host_threads=2))
            .scenario("fault-slow-link")
        )
        reference = scenario("fault-slow-link").simulation(quick=True)
        assert sim.spec() == reference.spec()

    def test_scenario_grid_honors_scale(self):
        from repro.experiments.common import QUICK_SCALE
        from repro.experiments.scenario_grid import run_scenario_grid

        clear_cache()
        grid = run_scenario_grid(
            QUICK_SCALE, scenarios=("paper-baseline",), systems=("pifs-rec",)
        )
        expected = scenario("paper-baseline").run(quick=True, engine="vector")
        assert grid["paper-baseline"]["pifs-rec"] == expected.total_ns


class TestScenarioCLI:
    def test_list(self, capsys):
        assert cli_main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in CATALOG:
            assert name in out

    def test_list_json(self, capsys):
        assert cli_main(["scenario", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} >= set(CATALOG)

    def test_run_named(self, capsys):
        assert cli_main(["scenario", "run", "fault-slow-link", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fault-slow-link" in out and "link-degrade" in out

    def test_run_json(self, capsys):
        assert cli_main(["scenario", "run", "paper-baseline", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["scenario"]["name"] == "paper-baseline"
        assert payload[0]["run"]["sim"]["total_ns"] > 0

    def test_run_requires_name_or_all(self, capsys):
        assert cli_main(["scenario", "run"]) == 2

    def test_unknown_scenario_exit_code(self, capsys):
        assert cli_main(["scenario", "run", "not-a-scenario", "--quick"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_compare_serial(self, capsys):
        assert cli_main([
            "scenario", "compare", "fault-degraded-device",
            "--system", "pond", "--system", "pifs-rec", "--quick", "--serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_pond" in out

    def test_export_trace(self, tmp_path, capsys):
        target = tmp_path / "exported.npz"
        assert cli_main([
            "scenario", "run", "paper-baseline", "--quick",
            "--export-trace", str(target),
        ]) == 0
        assert target.is_file()
        from repro.traces.files import load_trace

        assert load_trace(target)

    def test_export_trace_single_scenario_only(self, capsys):
        assert cli_main([
            "scenario", "run", "paper-baseline", "zipfian-skew",
            "--quick", "--export-trace", "x.npz",
        ]) == 2
