"""Tests for the PIFS hardware components (instructions, buffer, OoO, PC, FM)."""

import pytest

from repro.config import BufferConfig, PIFSConfig
from repro.cxl.protocol import MemOpcode
from repro.pifs.fm_endpoint import FMEndpointExtension, MemoryIndexingUnit, MigrationController
from repro.pifs.instructions import (
    PIFSInstruction,
    decode_vector_size,
    encode_vector_size,
    repack_instruction,
)
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.pifs.ooo import OutOfOrderAccumulator
from repro.pifs.process_core import ProcessCore


class TestInstructions:
    def test_vector_size_roundtrip(self):
        for row_bytes in (16, 32, 64, 128, 256, 512, 1024, 2048):
            assert decode_vector_size(encode_vector_size(row_bytes)) == row_bytes

    def test_unsupported_row_size(self):
        with pytest.raises(ValueError):
            encode_vector_size(48)

    def test_data_fetch_fields(self):
        instr = PIFSInstruction.data_fetch(address=0x1000, row_bytes=128, sumtag=5, spid=2)
        assert instr.is_data_fetch and not instr.is_config
        assert instr.row_bytes == 128
        assert instr.sumtag == 5

    def test_configuration_fields(self):
        instr = PIFSInstruction.configuration(result_address=0x2000, sum_candidate_count=9, sumtag=1, spid=2)
        assert instr.is_config
        assert instr.sum_candidate_count == 9
        assert instr.address == 0x2000

    def test_sumtag_width_enforced(self):
        with pytest.raises(ValueError):
            PIFSInstruction.data_fetch(address=0, row_bytes=64, sumtag=512, spid=0)

    def test_repack_rewrites_opcode_and_spid(self):
        fetch = PIFSInstruction.data_fetch(address=0x40, row_bytes=64, sumtag=3, spid=7)
        repacked = repack_instruction(fetch, switch_spid=0xFFF, device_dpid=4)
        assert repacked.opcode is MemOpcode.MEM_RD
        assert repacked.spid == 0xFFF
        assert repacked.dpid == 4
        assert repacked.data_bytes == 64

    def test_repack_rejects_config(self):
        config = PIFSInstruction.configuration(0, 1, 0, 0)
        with pytest.raises(ValueError):
            repack_instruction(config, 1, 2)

    def test_to_message(self):
        fetch = PIFSInstruction.data_fetch(address=0x40, row_bytes=64, sumtag=3, spid=7)
        message = fetch.to_message()
        assert message.opcode is MemOpcode.PIFS_DATA_FETCH
        assert message.sumtag == 3


class TestOnSwitchBuffer:
    def _buffer(self, policy="htr", capacity=1024, row_bytes=64):
        return OnSwitchBuffer(BufferConfig(policy=policy, capacity_bytes=capacity, htr_interval=64), row_bytes)

    def test_miss_then_hit(self):
        buf = self._buffer()
        assert buf.lookup(0x40) is False
        buf.insert(0x40)
        assert buf.lookup(0x40) is True
        assert buf.hits == 1 and buf.misses == 1

    def test_capacity_rows(self):
        buf = self._buffer(capacity=256, row_bytes=64)
        assert buf.capacity_rows == 4

    def test_none_policy_never_hits(self):
        buf = self._buffer(policy="none", capacity=0)
        buf.insert(0x40)
        assert buf.lookup(0x40) is False

    def test_fifo_evicts_oldest(self):
        buf = self._buffer(policy="fifo", capacity=128, row_bytes=64)  # 2 rows
        buf.insert(0x0)
        buf.insert(0x40)
        buf.insert(0x80)
        assert not buf.contains(0x0)
        assert buf.contains(0x80)

    def test_lru_evicts_least_recent(self):
        buf = self._buffer(policy="lru", capacity=128, row_bytes=64)
        buf.insert(0x0)
        buf.insert(0x40)
        buf.lookup(0x0)  # touch 0x0 so 0x40 becomes LRU
        buf.insert(0x80)
        assert buf.contains(0x0)
        assert not buf.contains(0x40)

    def test_htr_keeps_hot_rows(self):
        buf = self._buffer(policy="htr", capacity=128, row_bytes=64)  # 2 rows
        for _ in range(10):
            buf.lookup(0x0)
        buf.insert(0x0)
        buf.lookup(0x40)
        buf.insert(0x40)
        # A cold newcomer must not displace the hot resident row.
        buf.lookup(0x80)
        buf.insert(0x80)
        assert buf.contains(0x0)

    def test_hit_ratio(self):
        buf = self._buffer()
        buf.insert(0x0)
        buf.lookup(0x0)
        buf.lookup(0x40)
        assert buf.hit_ratio() == pytest.approx(0.5)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            OnSwitchBuffer(BufferConfig(policy="mru"), 64)

    def test_occupancy_never_exceeds_capacity(self):
        buf = self._buffer(policy="lru", capacity=256, row_bytes=64)
        for i in range(100):
            buf.lookup(i * 64)
            buf.insert(i * 64)
        assert buf.occupancy <= buf.capacity_rows


class TestOutOfOrderAccumulator:
    def test_same_sumtag_no_overhead(self):
        acc = OutOfOrderAccumulator(PIFSConfig())
        base = acc.accumulate_element(1)
        again = acc.accumulate_element(1)
        assert again == pytest.approx(base)
        assert acc.stats.switch_events == 0

    def test_ooo_switch_cheaper_than_inorder(self):
        config = PIFSConfig()
        ooo = OutOfOrderAccumulator(config, out_of_order=True)
        ino = OutOfOrderAccumulator(config, out_of_order=False)
        for engine in (ooo, ino):
            engine.accumulate_element(1)
        ooo_cost = ooo.accumulate_element(2)
        ino_cost = ino.accumulate_element(2)
        assert ooo_cost < ino_cost
        assert ino.stats.stall_cycles > 0

    def test_swap_register_exhaustion_spills(self):
        config = PIFSConfig(swap_registers=1)
        acc = OutOfOrderAccumulator(config, out_of_order=True)
        acc.accumulate_element(1)
        acc.accumulate_element(2)  # uses the only swap register
        acc.accumulate_element(3)  # must spill to SRAM
        assert acc.stats.swap_spills >= 1

    def test_finish_frees_swap_register(self):
        acc = OutOfOrderAccumulator(PIFSConfig(swap_registers=1), out_of_order=True)
        acc.accumulate_element(1)
        acc.accumulate_element(2)
        acc.finish_sumtag(1)
        acc.accumulate_element(3)
        assert acc.stats.swap_spills == 0

    def test_reset(self):
        acc = OutOfOrderAccumulator(PIFSConfig())
        acc.accumulate_element(1)
        acc.reset()
        assert acc.stats.elements == 0


class TestProcessCore:
    def _configured(self, count=3, sumtag=1):
        core = ProcessCore(PIFSConfig())
        instr = PIFSInstruction.configuration(0x9000, count, sumtag, spid=0)
        ready = core.configure(instr, now_ns=0.0)
        return core, ready

    def test_opcode_checker(self):
        core = ProcessCore(PIFSConfig())
        assert core.check_opcode(MemOpcode.PIFS_CONFIG)
        assert not core.check_opcode(MemOpcode.MEM_RD)
        assert core.stats.bypassed_instructions == 1

    def test_configure_creates_acr_entry(self):
        core, ready = self._configured(count=5)
        entry = core.acr_entry(1)
        assert entry is not None and entry.remaining == 5
        assert ready > 0

    def test_fetch_requires_configuration(self):
        core = ProcessCore(PIFSConfig())
        fetch = PIFSInstruction.data_fetch(0x40, 64, sumtag=9, spid=0)
        with pytest.raises(KeyError):
            core.register_fetch(fetch, 0.0)

    def test_accumulate_until_complete(self):
        core, ready = self._configured(count=2)
        fetch = PIFSInstruction.data_fetch(0x40, 64, sumtag=1, spid=0)
        core.register_fetch(fetch, ready)
        assert not core.is_complete(1)
        core.accumulate(1, ready + 10)
        core.accumulate(1, ready + 20)
        assert core.is_complete(1)
        entry = core.retire(1, ready + 30)
        assert entry.accumulated == 2
        assert core.active_sumtags == 0

    def test_retire_incomplete_raises(self):
        core, ready = self._configured(count=2)
        core.accumulate(1, ready)
        with pytest.raises(RuntimeError):
            core.retire(1, ready)

    def test_ingress_registry_match(self):
        core, ready = self._configured()
        fetch = PIFSInstruction.data_fetch(0x1234 * 16, 64, sumtag=1, spid=0)
        core.register_fetch(fetch, ready)
        assert core.match_ingress(0x1234 * 16) is not None
        assert core.match_ingress(0xDEAD0) is None

    def test_acr_backpressure(self):
        config = PIFSConfig(acr_capacity=1)
        core = ProcessCore(config)
        core.configure(PIFSInstruction.configuration(0, 1, 0, 0), now_ns=0.0)
        core.configure(PIFSInstruction.configuration(0, 1, 1, 0), now_ns=0.0)
        assert core.stats.backpressure_events == 1
        assert core.stats.backpressure_ns > 0

    def test_reset(self):
        core, _ = self._configured()
        core.reset()
        assert core.active_sumtags == 0
        assert core.stats.decoded_instructions == 0


class TestFMEndpoint:
    def test_indexing_ranges(self):
        unit = MemoryIndexingUnit()
        unit.add_range(0, 1 << 20, device_id=0)
        unit.add_range(1 << 20, 1 << 21, device_id=1)
        assert unit.device_for(100) == 0
        assert unit.device_for((1 << 20) + 5) == 1

    def test_page_override_wins(self):
        unit = MemoryIndexingUnit()
        unit.add_range(0, 1 << 20, device_id=0)
        unit.set_page_owner(0, device_id=3)
        assert unit.device_for(100) == 3

    def test_unmapped_raises(self):
        with pytest.raises(KeyError):
            MemoryIndexingUnit().device_for(5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MemoryIndexingUnit().add_range(10, 10, 0)

    def test_migration_controller_blocks_line(self):
        controller = MigrationController()
        available = controller.begin_line(0x1000, now_ns=0.0)
        assert controller.access_delay(0x1000, 0.0) == pytest.approx(available)
        assert controller.access_delay(0x2000, 0.0) == 0.0
        controller.finish_line(0x1000)
        assert controller.access_delay(0x1000, 0.0) == 0.0

    def test_device_access_profiling(self):
        ext = FMEndpointExtension()
        ext.record_device_access(0, 0x40)
        ext.record_device_access(0, 0x40)
        ext.record_device_access(1, 0x80)
        assert ext.device_access_counts() == {0: 2, 1: 1}
        assert ext.address_profiler.count(0x40) == 2
        ext.reset_counters()
        assert ext.device_access_counts() == {}
