"""Tests for the tiered-memory substrate (repro.memsys)."""

import pytest

from repro.config import GIB, PAGE_SIZE_BYTES, RMC1
from repro.memsys.address_space import AddressSpace
from repro.memsys.allocator import InterleaveAllocator, PlacementPolicy
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.page import Page, page_id_of
from repro.memsys.tiered import TieredMemorySystem


def make_nodes(num_cxl=2, local_capacity=1 * GIB):
    nodes = [
        MemoryNode(0, MemoryTier.LOCAL_DRAM, local_capacity, 90.0, 400.0),
        MemoryNode(1, MemoryTier.REMOTE_SOCKET, 1 * GIB, 140.0, 70.0),
    ]
    for i in range(num_cxl):
        nodes.append(MemoryNode(2 + i, MemoryTier.CXL, 1 * GIB, 190.0, 25.0))
    return nodes


class TestPage:
    def test_page_id_of(self):
        assert page_id_of(0) == 0
        assert page_id_of(4095) == 0
        assert page_id_of(4096) == 1

    def test_negative_address(self):
        with pytest.raises(ValueError):
            page_id_of(-1)

    def test_record_and_decay(self):
        page = Page(page_id=0, node_id=0)
        page.record_access(1.0)
        page.record_access(2.0)
        assert page.access_count == 2
        page.decay(0.5)
        assert page.access_count == 1

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            Page(0, 0).decay(1.5)


class TestMemoryNode:
    def test_allocate_release(self):
        node = make_nodes()[0]
        node.allocate(PAGE_SIZE_BYTES)
        assert node.used_bytes == PAGE_SIZE_BYTES
        node.release(PAGE_SIZE_BYTES)
        assert node.used_bytes == 0

    def test_over_allocation_raises(self):
        node = MemoryNode(0, MemoryTier.CXL, PAGE_SIZE_BYTES, 100.0, 10.0)
        node.allocate(PAGE_SIZE_BYTES)
        with pytest.raises(MemoryError):
            node.allocate(1)

    def test_serve_serializes_on_bandwidth(self):
        node = MemoryNode(0, MemoryTier.CXL, 1 * GIB, 100.0, bandwidth_gbps=1.0)
        first = node.serve(0.0, 100)
        second = node.serve(0.0, 100)
        assert second > first

    def test_serve_includes_latency(self):
        node = MemoryNode(0, MemoryTier.CXL, 1 * GIB, 150.0, 100.0)
        assert node.serve(0.0, 64) >= 150.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryNode(0, MemoryTier.CXL, 0, 100.0, 10.0)


class TestAddressSpace:
    def test_for_model(self):
        space = AddressSpace.for_model(RMC1)
        assert space.num_tables == RMC1.num_tables
        assert space.row_bytes == RMC1.embedding_row_bytes

    def test_table_stride_page_aligned(self):
        space = AddressSpace(num_tables=2, num_embeddings=100, row_bytes=48)
        assert space.table_stride % space.page_size == 0
        assert space.table_stride >= space.table_bytes

    def test_row_address_roundtrip(self):
        space = AddressSpace(num_tables=4, num_embeddings=1000, row_bytes=64)
        for table in range(4):
            for row in (0, 1, 500, 999):
                addr = space.row_address(table, row)
                assert space.locate(addr) == (table, row)

    def test_out_of_range(self):
        space = AddressSpace(num_tables=2, num_embeddings=10, row_bytes=64)
        with pytest.raises(ValueError):
            space.row_address(2, 0)
        with pytest.raises(ValueError):
            space.row_address(0, 10)

    def test_rows_per_page(self):
        space = AddressSpace(num_tables=1, num_embeddings=10, row_bytes=256)
        assert space.rows_per_page == 16

    def test_total_pages(self):
        space = AddressSpace(num_tables=2, num_embeddings=64, row_bytes=64)
        assert space.total_pages == space.total_bytes // space.page_size


class TestAllocator:
    def test_local_only(self):
        nodes = make_nodes()
        placement = InterleaveAllocator(nodes, PlacementPolicy.LOCAL_ONLY).place_pages(100)
        assert set(placement.values()) == {0}

    def test_cxl_only_single_expander(self):
        nodes = make_nodes(num_cxl=3)
        placement = InterleaveAllocator(nodes, PlacementPolicy.CXL_ONLY).place_pages(100)
        assert set(placement.values()) == {2}

    def test_interleave_spill_fraction(self):
        nodes = make_nodes(num_cxl=2)
        allocator = InterleaveAllocator(nodes, PlacementPolicy.INTERLEAVE, spill_fraction=0.2)
        placement = allocator.place_pages(1000)
        spilled = sum(1 for node in placement.values() if node >= 2)
        assert 150 <= spilled <= 250  # ~20 %

    def test_interleave_uses_all_cxl_nodes(self):
        nodes = make_nodes(num_cxl=3)
        allocator = InterleaveAllocator(nodes, PlacementPolicy.INTERLEAVE, spill_fraction=0.5)
        placement = allocator.place_pages(100)
        assert {n for n in placement.values() if n >= 2} == {2, 3, 4}

    def test_cxl_fraction_single_node(self):
        nodes = make_nodes(num_cxl=3)
        allocator = InterleaveAllocator(nodes, PlacementPolicy.CXL_FRACTION, spill_fraction=0.5)
        placement = allocator.place_pages(100)
        assert {n for n in placement.values() if n >= 2} == {2}

    def test_remote_fraction_requires_remote_node(self):
        nodes = [n for n in make_nodes() if n.tier is not MemoryTier.REMOTE_SOCKET]
        allocator = InterleaveAllocator(nodes, PlacementPolicy.REMOTE_FRACTION)
        with pytest.raises(ValueError):
            allocator.place_pages(10)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            InterleaveAllocator(make_nodes(), spill_fraction=1.5)


class TestAccessTracker:
    def test_record_and_count(self):
        tracker = AccessTracker()
        tracker.record(1)
        tracker.record(1)
        tracker.record(2)
        assert tracker.count(1) == 2
        assert tracker.total == 3

    def test_hottest_and_coldest(self):
        tracker = AccessTracker()
        for key, times in ((1, 5), (2, 1), (3, 3)):
            for _ in range(times):
                tracker.record(key)
        assert tracker.hottest(1)[0][0] == 1
        assert tracker.coldest(1)[0][0] == 2

    def test_frequency(self):
        tracker = AccessTracker()
        tracker.record(1, weight=3)
        tracker.record(2)
        assert tracker.frequency(1) == pytest.approx(0.75)

    def test_decay_drops_zeroes(self):
        tracker = AccessTracker()
        tracker.record(1)
        tracker.decay(0.4)
        assert tracker.count(1) == 0
        assert 1 not in set(tracker.keys())

    def test_merge(self):
        a, b = AccessTracker(), AccessTracker()
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.count(1) == 2
        assert a.total == 3


class TestTieredMemorySystem:
    def _system(self, pages=64, num_cxl=2):
        tiered = TieredMemorySystem(make_nodes(num_cxl=num_cxl))
        placement = {p: (0 if p % 2 == 0 else 2 + (p % num_cxl)) for p in range(pages)}
        tiered.install_placement(placement)
        return tiered

    def test_placement_tracks_capacity(self):
        tiered = self._system(pages=10)
        local = tiered.node(0)
        assert local.used_bytes == 5 * PAGE_SIZE_BYTES

    def test_duplicate_placement_rejected(self):
        tiered = self._system(pages=4)
        with pytest.raises(ValueError):
            tiered.place_page(0, 0)

    def test_node_of_address(self):
        tiered = self._system()
        assert tiered.node_of_address(0).node_id == 0
        assert tiered.node_of_address(PAGE_SIZE_BYTES).tier is MemoryTier.CXL

    def test_record_access_updates_counters(self):
        tiered = self._system()
        tiered.record_access(100, now_ns=5.0)
        assert tiered.page(0).access_count == 1
        assert tiered.node(0).access_count == 1

    def test_migrate_page_moves_capacity(self):
        tiered = self._system()
        before_local = tiered.node(0).used_bytes
        record = tiered.migrate_page(0, 2)
        assert record.cost_ns > 0
        assert tiered.node(0).used_bytes == before_local - PAGE_SIZE_BYTES
        assert tiered.node_of_page(0).node_id == 2
        assert tiered.migration_stats.migrations == 1

    def test_migrate_to_same_node_is_free(self):
        tiered = self._system()
        record = tiered.migrate_page(0, 0)
        assert record.cost_ns == 0.0
        assert tiered.migration_stats.migrations == 0

    def test_swap_pages(self):
        tiered = self._system()
        node_a = tiered.node_of_page(0).node_id
        node_b = tiered.node_of_page(1).node_id
        tiered.swap_pages(0, 1)
        assert tiered.node_of_page(0).node_id == node_b
        assert tiered.node_of_page(1).node_id == node_a

    def test_cacheline_migration_cheaper_than_page_block(self):
        tiered = self._system()
        assert tiered.migration_cost_ns("cacheline_block") < tiered.migration_cost_ns("page_block")

    def test_blocked_rows(self):
        tiered = self._system()
        assert tiered.blocked_rows_per_migration(64, "page_block") == PAGE_SIZE_BYTES // 64
        assert tiered.blocked_rows_per_migration(64, "cacheline_block") == 1

    def test_unknown_migration_mode(self):
        with pytest.raises(ValueError):
            TieredMemorySystem(make_nodes(), migration_mode="teleport")

    def test_reset_access_counters(self):
        tiered = self._system()
        tiered.record_access(0)
        tiered.reset_access_counters()
        assert tiered.node(0).access_count == 0
        assert tiered.page(0).access_count == 0
