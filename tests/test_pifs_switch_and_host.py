"""Tests for the PIFS switch accumulation flow, host flow and forwarding."""

import pytest

from repro.config import CXLConfig, DDR4_CXL_CONFIG, PIFSConfig, SystemConfig
from repro.cxl.device import CXLType3Device
from repro.cxl.topology import FabricTopology
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.tiered import TieredMemorySystem
from repro.pifs.forwarding import ForwardController, MultiSwitchCoordinator
from repro.pifs.host import PIFSHost
from repro.pifs.switch import PIFSSwitch, RowFetch


def build_switch(num_devices=2, compute_enabled=True, **pifs_kwargs):
    from dataclasses import replace

    pifs_config = replace(PIFSConfig(), **pifs_kwargs) if pifs_kwargs else PIFSConfig()
    switch = PIFSSwitch(CXLConfig(), pifs_config, row_bytes=256, compute_enabled=compute_enabled)
    for i in range(num_devices):
        switch.attach_device(CXLType3Device(i, DDR4_CXL_CONFIG, CXLConfig()))
    port = switch.attach_host("host0")
    return switch, port


class TestPIFSSwitchAccumulate:
    def test_accumulate_completes_and_notifies_host(self):
        switch, port = build_switch()
        rows = [RowFetch(address=i * 256, device_id=i % 2) for i in range(8)]
        outcome = switch.accumulate(rows, port, issue_ns=0.0, result_address=0x8000)
        assert outcome.host_notified_ns > outcome.result_ready_ns - 1e-9
        assert outcome.buffer_hits + outcome.buffer_misses == 8
        assert sum(outcome.device_rows.values()) == 8
        assert outcome.writeback.address == 0x8000

    def test_sumtag_retired_after_accumulation(self):
        switch, port = build_switch()
        rows = [RowFetch(address=0, device_id=0)]
        outcome = switch.accumulate(rows, port, issue_ns=0.0)
        assert switch.process_core.active_sumtags == 0
        assert switch.process_core.stats.completed_sumtags == 1
        assert outcome.sumtag >= 0

    def test_repeated_rows_hit_buffer(self):
        switch, port = build_switch()
        rows = [RowFetch(address=0x40, device_id=0)] * 4
        outcome = switch.accumulate(rows, port, issue_ns=0.0)
        assert outcome.buffer_hits >= 3

    def test_empty_rows_rejected(self):
        switch, port = build_switch()
        with pytest.raises(ValueError):
            switch.accumulate([], port, issue_ns=0.0)

    def test_compute_disabled_raises(self):
        switch, port = build_switch(compute_enabled=False)
        with pytest.raises(RuntimeError):
            switch.accumulate([RowFetch(0, 0)], port, issue_ns=0.0)

    def test_per_row_overhead_slows_accumulation(self):
        fast_switch, fast_port = build_switch()
        slow_switch, slow_port = build_switch()
        rows = [RowFetch(address=i * 256, device_id=0) for i in range(4)]
        fast = fast_switch.accumulate(rows, fast_port, issue_ns=0.0)
        slow = slow_switch.accumulate(rows, slow_port, issue_ns=0.0, per_row_overhead_ns=50.0)
        assert slow.result_ready_ns > fast.result_ready_ns

    def test_parallel_devices_faster_than_single(self):
        multi, multi_port = build_switch(num_devices=4)
        single, single_port = build_switch(num_devices=1)
        multi_rows = [RowFetch(address=i * 4096, device_id=i % 4) for i in range(16)]
        single_rows = [RowFetch(address=i * 4096, device_id=0) for i in range(16)]
        multi_out = multi.accumulate(multi_rows, multi_port, issue_ns=0.0)
        single_out = single.accumulate(single_rows, single_port, issue_ns=0.0)
        assert multi_out.result_ready_ns < single_out.result_ready_ns

    def test_sumtag_allocator_wraps(self):
        switch, _ = build_switch()
        tags = {switch.allocate_sumtag() for _ in range(600)}
        assert max(tags) < 512

    def test_no_notify_skips_upstream_transfer(self):
        switch, port = build_switch()
        rows = [RowFetch(address=0, device_id=0)]
        outcome = switch.accumulate(rows, port, issue_ns=0.0, notify_host=False)
        assert outcome.host_notified_ns == pytest.approx(outcome.result_ready_ns)


class TestPIFSHost:
    def _tiered(self):
        nodes = [
            MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 400.0),
            MemoryNode(1, MemoryTier.CXL, 1 << 20, 190.0, 25.0),
        ]
        tiered = TieredMemorySystem(nodes)
        tiered.install_placement({0: 0, 1: 1})
        return tiered

    def test_split_candidates(self):
        host = PIFSHost(0, SystemConfig())
        tiered = self._tiered()
        split = host.split_candidates([100, 5000], tiered)
        assert split.local_addresses == [100]
        assert split.remote_addresses == [5000]
        assert split.sum_candidate_count == 1

    def test_accumulate_local_empty(self):
        host = PIFSHost(0, SystemConfig())
        assert host.accumulate_local([], 10.0, lambda a, t: t + 1) == 10.0

    def test_accumulate_local_groups(self):
        host = PIFSHost(0, SystemConfig())
        finish = host.accumulate_local(list(range(0, 64 * 20, 64)), 0.0, lambda a, t: t + 50.0)
        # 20 rows with MLP 8 -> 3 groups of loads plus per-row adds.
        assert finish >= 3 * 50.0

    def test_combine_waits_for_slowest(self):
        host = PIFSHost(0, SystemConfig())
        combined = host.combine(local_done_ns=100.0, remote_done_ns=500.0)
        assert combined >= 500.0 + host.SNOOP_DETECT_NS
        assert host.stats.results_combined == 1


class TestForwarding:
    def test_forward_controller_waits_for_all(self):
        controller = ForwardController()
        controller.expect(1, switch_id=2, sub_candidate_count=3)
        controller.expect(1, switch_id=3, sub_candidate_count=2)
        first = controller.record_arrival(1, 2, arrival_ns=100.0)
        assert not first.complete and first.missing_switches == [3]
        second = controller.record_arrival(1, 3, arrival_ns=250.0)
        assert second.complete
        assert second.forward_ns == pytest.approx(250.0)

    def test_unknown_arrival_rejected(self):
        controller = ForwardController()
        with pytest.raises(KeyError):
            controller.record_arrival(5, 0, 0.0)

    def test_discard(self):
        controller = ForwardController()
        controller.expect(1, 2, 1)
        controller.discard(1)
        with pytest.raises(KeyError):
            controller.record_arrival(1, 2, 0.0)

    def test_partition_rows(self):
        coordinator = MultiSwitchCoordinator(FabricTopology(2, CXLConfig()), CXLConfig())
        assert coordinator.partition_rows([0, 1, 1, 0, 1]) == {0: 2, 1: 3}

    def test_cnv_bit(self):
        coordinator = MultiSwitchCoordinator(
            FabricTopology(2, CXLConfig()), CXLConfig(), compute_capable=[True, False]
        )
        assert coordinator.is_compute_capable(0)
        assert not coordinator.is_compute_capable(1)

    def test_cnv0_switch_streams_raw_rows(self):
        cxl = CXLConfig()
        topo = FabricTopology(2, cxl)
        smart = MultiSwitchCoordinator(topo, cxl, compute_capable=[True, True])
        dumb = MultiSwitchCoordinator(topo, cxl, compute_capable=[True, False])
        smart_time = smart.remote_accumulation_time(0, 1, rows=32, row_bytes=256, per_row_fetch_ns=200.0, issue_ns=0.0)
        dumb_time = dumb.remote_accumulation_time(0, 1, rows=32, row_bytes=256, per_row_fetch_ns=200.0, issue_ns=0.0)
        assert dumb_time > smart_time

    def test_invalid_rows(self):
        coordinator = MultiSwitchCoordinator(FabricTopology(2, CXLConfig()), CXLConfig())
        with pytest.raises(ValueError):
            coordinator.remote_accumulation_time(0, 1, rows=0, row_bytes=64, per_row_fetch_ns=1.0, issue_ns=0.0)

    def test_compute_capable_length_checked(self):
        with pytest.raises(ValueError):
            MultiSwitchCoordinator(FabricTopology(2, CXLConfig()), CXLConfig(), compute_capable=[True])
