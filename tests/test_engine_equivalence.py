"""Scalar ↔ vector ↔ packet engine equivalence, eager ↔ streaming.

The vector and packet engines are only allowed to be *faster* or *more
detailed* — never different — and streaming a workload out-of-core is only
allowed to change memory residency, never the simulation.  These tests pin,
for every registered system, that every engine tier produces a
:class:`~repro.sls.result.SimResult` numerically identical to the scalar
oracle (closed-loop replay *and* the online serving path), that the backend
models are left in the same observable state (device counters, DRAM
statistics, buffer contents, page hotness), and that the eager and
streaming workload twins replay identically.  The shared differential
harness (:mod:`harness`) owns the fingerprinting; a hypothesis sweep varies
the workload shape so the equivalence is a property, not a golden value.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import (
    RunCase,
    assert_run_identical,
    assert_serve_identical,
    backend_fingerprint,
    serve_fingerprint,
)
from repro.api.registry import available_systems, create_system
from repro.api.session import Simulation, RunSpec, build_system, clear_cache
from repro.config import DEFAULT_SYSTEM, RMC1, WorkloadConfig, scaled_model
from repro.dram.device import DRAMDevice
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier, placement_arrays
from repro.memsys.tiered import TieredMemorySystem
from repro.serve.server import ServeConfig, serve
from repro.sls.engine import ENGINES, SLSSystem
from repro.traces.workload import build_workload

ALL_SYSTEMS = ("pond", "pond+pm", "beacon", "recnmp", "tpp", "pifs-rec", "pifs-rec-nopm")

#: Kept under its historical name — several asserts below fingerprint a
#: system they built by hand.
_backend_fingerprint = backend_fingerprint


def _run(name, system_config, workload, engine):
    system = create_system(name, system_config).set_engine(engine)
    result = system.run(workload)
    return system, result


@pytest.fixture(scope="module")
def multi_workload_config(tiny_model):
    """A two-host workload recipe (exercises per-host lanes, ports, drams)."""
    return WorkloadConfig(
        model=tiny_model, batch_size=4, num_batches=2, pooling_factor=8, seed=13
    )


class TestClosedLoopEquivalence:
    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_simresult_identical(self, name, tiny_workload_config, tiny_system):
        assert_run_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            engines=("scalar", "vector"),
        )

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_backend_state_identical(self, name, tiny_workload_config, tiny_system):
        # Recording on/off is part of the grid here: the recorder only
        # receives timestamps the simulation already computed.
        assert_run_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            engines=("scalar", "vector"),
            streaming=(False,),
            observe=(False, True),
        )

    @pytest.mark.parametrize("name", ["pifs-rec", "pond", "recnmp"])
    def test_multi_host_multi_switch(self, name, multi_workload_config, tiny_system):
        config = replace(tiny_system, num_hosts=2, num_fabric_switches=2)
        assert_run_identical(
            RunCase(name, config, multi_workload_config, num_hosts=2),
            engines=("scalar", "vector"),
        )

    @pytest.mark.parametrize("distribution", ["zipfian", "uniform", "random"])
    def test_distributions(self, distribution, tiny_model, tiny_system):
        workload_config = WorkloadConfig(
            model=tiny_model, batch_size=4, num_batches=2,
            pooling_factor=8, seed=7, distribution=distribution,
        )
        for name in ("pond", "pifs-rec"):
            assert_run_identical(
                RunCase(name, tiny_system, workload_config),
                engines=("scalar", "vector"),
            )


@given(
    batch_size=st.integers(min_value=1, max_value=6),
    pooling=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
    name=st.sampled_from(["pond", "beacon", "recnmp", "pifs-rec"]),
)
@settings(max_examples=12, deadline=None)
def test_equivalence_property(batch_size, pooling, seed, name):
    """Engine equivalence holds across workload shapes, not one golden trace."""
    model = replace(scaled_model(RMC1, 256 / RMC1.num_embeddings), num_tables=3)
    workload_config = WorkloadConfig(
        model=model, batch_size=batch_size, num_batches=1,
        pooling_factor=pooling, seed=seed,
    )
    config = replace(
        DEFAULT_SYSTEM,
        local_dram_capacity_bytes=max(8192, model.table_bytes),
        num_cxl_devices=2,
        host_threads=2,
        page_mgmt=replace(DEFAULT_SYSTEM.page_mgmt, migration_epoch_accesses=64),
    )
    assert_run_identical(
        RunCase(name, config, workload_config), engines=("scalar", "vector")
    )


class TestServeEquivalence:
    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_serve_records_identical(self, name, tiny_workload_config, tiny_system):
        assert_serve_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            ServeConfig(qps=3e5, arrival="poisson", max_batch_size=4, seed=11),
            engines=("scalar", "vector"),
        )

    @pytest.mark.parametrize("arrival", ["bursty", "mmpp", "diurnal"])
    @pytest.mark.parametrize("name", ["pifs-rec", "recnmp"])
    def test_serve_arrivals_multi_host(
        self, name, arrival, multi_workload_config, tiny_system
    ):
        """Serve equivalence under bursty/diurnal load, 2 hosts x 2 switches.

        The batched dispatch path (and the streaming loop's bounded-lookahead
        heap) must reproduce the scalar serve loop exactly even when arrivals
        cluster (MMPP bursts) or drift (diurnal), per-host queues fill
        unevenly, and the fabric spans multiple switches.
        """
        config = replace(tiny_system, num_hosts=2, num_fabric_switches=2)
        assert_serve_identical(
            RunCase(name, config, multi_workload_config, num_hosts=2),
            ServeConfig(
                qps=2.5e5, arrival=arrival, max_batch_size=4,
                max_wait_ns=50_000.0, seed=17,
            ),
            engines=("scalar", "vector"),
        )

    def test_simulation_serve_terminal(self):
        clear_cache()
        scalar = Simulation("pifs-rec").quick().serve(2e5, seed=3)
        clear_cache()
        vector = Simulation("pifs-rec").quick().engine("vector").serve(2e5, seed=3)
        clear_cache()
        streamed = Simulation("pifs-rec").quick().stream().serve(2e5, seed=3)
        assert scalar.latency.to_dict() == vector.latency.to_dict()
        assert scalar.goodput_qps == vector.goodput_qps
        assert serve_fingerprint(streamed) == serve_fingerprint(scalar)


class TestScenarioEquivalence:
    """Scenario runs — faults, mixes, drift — are engine-bit-identical too.

    Faults mutate the machine at session setup (before the vector kernels
    snapshot it) and scenario workloads come from providers instead of the
    stationary generators; both paths must leave the scalar oracle and the
    vector engine in perfect agreement, SimResult and backend state alike.
    Scenarios compile to a :class:`RunSpec`, so the harness drives them
    straight through the facade (including the ``stream`` knob — providers
    that must materialize simply rebuild eagerly).
    """

    #: At least one fault-injection and one multi-tenant scenario (ISSUE 5
    #: acceptance), plus drift, a congested multi-switch fabric, and the
    #: buffer cut.
    SCENARIOS = (
        "fault-slow-link",
        "fault-degraded-device",
        "fault-buffer-squeeze",
        "fabric-congested",
        "tenant-mix",
        "drift-rotation",
    )

    @staticmethod
    def _spec(name) -> RunSpec:
        from repro.scenarios import scenario

        return scenario(name).simulation(quick=True).spec()

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_simresult_identical(self, name):
        assert_run_identical(self._spec(name), engines=("scalar", "vector"))

    @pytest.mark.parametrize("name", ["fault-slow-link", "tenant-mix"])
    def test_backend_state_identical(self, name):
        assert_run_identical(
            self._spec(name),
            engines=("scalar", "vector"),
            streaming=(False,),
            observe=(False, True),
        )

    @pytest.mark.parametrize("name", ["fault-degraded-device", "tenant-mix"])
    def test_serve_identical(self, name):
        from repro.scenarios import scenario

        scalar = scenario(name).serve(quick=True, engine="scalar")
        vector = scenario(name).serve(quick=True, engine="vector")
        assert serve_fingerprint(vector) == serve_fingerprint(scalar)

    def test_faults_change_results(self):
        """Guard against a fault hook that silently stops applying."""
        from repro.scenarios import scenario

        baseline = scenario("paper-baseline").run(quick=True, cache=False)
        for name in ("fault-slow-link", "fault-degraded-device"):
            assert scenario(name).run(quick=True, cache=False).total_ns > baseline.total_ns


class TestEngineKnob:
    def test_set_engine_validates(self, tiny_system):
        system = create_system("pond", tiny_system)
        with pytest.raises(ValueError, match="unknown engine"):
            system.set_engine("warp")
        assert system.set_engine("vector") is system
        assert system.engine == "vector"

    def test_simulation_engine_validates(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulation("pond").engine("warp")

    def test_engines_constant(self):
        assert ENGINES == ("scalar", "vector", "packet")

    def test_spec_key_distinguishes_engines(self):
        from repro.api.session import spec_key

        scalar_key = spec_key(RunSpec(system="pond"))
        vector_key = spec_key(RunSpec(system="pond", engine="vector"))
        assert scalar_key != vector_key

    def test_build_system_applies_engine(self):
        system = build_system(RunSpec(system="pond", engine="vector"))
        assert system.engine == "vector"

    def test_params_record_engine(self):
        clear_cache()
        run = Simulation("pond").quick().engine("vector").run()
        assert run.params["engine"] == "vector"
        clear_cache()
        scalar_run = Simulation("pond").quick().run()
        assert "engine" not in scalar_run.params

    def test_sweep_axis(self):
        from repro.api.sweep import Sweep

        clear_cache()
        result = Sweep(
            over={"engine": ["scalar", "vector"]},
            base=Simulation("pond").quick(),
        ).run(parallel=False)
        assert len(result) == 2
        assert result[0].total_ns == result[1].total_ns

    def test_unsupported_system_falls_back_to_scalar(self, tiny_workload, tiny_system):
        class Stubborn(SLSSystem):
            name = "stubborn"

            def build_placement(self, workload):
                return self.place_capacity_order(workload)

            def process_request(self, request, start_ns, host_id):
                return self.host_accumulate_bag(request.addresses, start_ns, host_id)

        assert Stubborn.supports_vector_engine is False
        system = Stubborn(tiny_system).set_engine("vector")
        result = system.run(tiny_workload)
        assert system._vector is None  # no context: scalar path served the run
        reference = Stubborn(tiny_system).run(tiny_workload)
        assert result.to_dict() == reference.to_dict()


class TestPacketEquivalence:
    """Uncongested packet tier ↔ scalar oracle, for every registered system.

    ``fidelity="packet"`` threads every fabric transfer through a
    :class:`repro.net.port.PortQueue`.  With the default (unbounded)
    :class:`repro.net.fabric.PacketConfig` the queues observe without
    perturbing, so the SimResult must be bit-identical to the scalar tier
    — except for the extra ``net`` report, which must exist, count every
    packet, and show zero congestion.
    """

    @staticmethod
    def _assert_net_clean(fingerprints) -> None:
        assert fingerprints["scalar"]["net"] is None
        net = fingerprints["packet"]["net"]
        assert net is not None, "packet fabric was not attached"
        assert net["packets"] > 0
        assert net["backpressure_ns"] == 0.0
        assert net["drops"] == 0 and net["retries"] == 0

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_simresult_identical(self, name, tiny_workload_config, tiny_system):
        fingerprints = assert_run_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            engines=("scalar", "packet"),
        )
        self._assert_net_clean(fingerprints)

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_backend_state_identical(self, name, tiny_workload_config, tiny_system):
        assert_run_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            engines=("scalar", "packet"),
            streaming=(False,),
            observe=(False, True),
        )

    @pytest.mark.parametrize("name", ["pifs-rec", "pond", "recnmp"])
    def test_multi_host_multi_switch(self, name, multi_workload_config, tiny_system):
        """The inter-switch hop channel rides the packet tier too."""
        config = replace(tiny_system, num_hosts=2, num_fabric_switches=2)
        fingerprints = assert_run_identical(
            RunCase(name, config, multi_workload_config, num_hosts=2),
            engines=("scalar", "packet"),
        )
        self._assert_net_clean(fingerprints)

    @pytest.mark.parametrize("name", ALL_SYSTEMS)
    def test_serve_records_identical(self, name, tiny_workload_config, tiny_system):
        assert_serve_identical(
            RunCase(name, tiny_system, tiny_workload_config),
            ServeConfig(qps=3e5, arrival="poisson", max_batch_size=4, seed=11),
            engines=("scalar", "packet"),
        )

    def test_finite_buffers_diverge(self, tiny_workload, tiny_system):
        """The identity is a property of unbounded queues, not a tautology:
        a 1-credit buffer must actually change the answer."""
        from repro.net.fabric import PacketConfig

        _, scalar = _run("recnmp", tiny_system, tiny_workload, "scalar")
        system = create_system("recnmp", tiny_system).set_engine("packet")
        system.set_packet_config(PacketConfig(capacity=1))
        congested = system.run(tiny_workload)
        assert congested.net.backpressure_ns > 0.0
        assert congested.total_ns > scalar.total_ns


class TestBatchedPrimitives:
    """The layer-level batch kernels against their scalar counterparts."""

    def test_dram_kernel_access_batch(self):
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 1 << 24, size=256, dtype=np.int64)
        scalar_device = DRAMDevice(DEFAULT_SYSTEM.cxl_dram)
        batch_device = DRAMDevice(DEFAULT_SYSTEM.cxl_dram)
        expected = [scalar_device.access(int(a), 0.0, bytes_requested=256) for a in addresses]
        kernel = batch_device.batch_kernel(256)
        got = kernel.access_batch(addresses, 0.0)
        kernel.sync()
        assert got.tolist() == expected
        assert batch_device.stats().__dict__ == scalar_device.stats().__dict__

    def test_decode_batch_matches_scalar(self):
        from repro.dram.address_mapping import AddressMapping

        mapping = AddressMapping(DEFAULT_SYSTEM.local_dram)
        rng = np.random.default_rng(9)
        addresses = rng.integers(0, 1 << 30, size=512, dtype=np.int64)
        ch, rank, bank, row, col = mapping.decode_batch(addresses)
        for i, address in enumerate(addresses.tolist()):
            decoded = mapping.decode(address)
            assert (decoded.channel, decoded.rank, decoded.bank, decoded.row, decoded.column) == (
                ch[i], rank[i], bank[i], row[i], col[i],
            )

    def test_link_kernel_matches_scalar(self):
        from repro.cxl.link import CXLLink

        scalar_link = CXLLink(64.0)
        batch_link = CXLLink(64.0)
        kernel = batch_link.batch_kernel()
        starts = [0.0, 1.0, 1.5, 100.0, 100.0]
        expected = [scalar_link.transfer(64, s) for s in starts]
        got = [kernel.transfer(64, s) for s in starts]
        kernel.sync()
        assert got == expected
        assert batch_link.busy_until_ns == scalar_link.busy_until_ns
        assert batch_link.total_queue_delay_ns == scalar_link.total_queue_delay_ns
        assert batch_link.transfers == scalar_link.transfers

    def test_record_accesses_matches_scalar_loop(self):
        def fresh():
            tiered = TieredMemorySystem(
                [
                    MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 38.4),
                    MemoryNode(1, MemoryTier.CXL, 1 << 20, 190.0, 25.6),
                ]
            )
            tiered.install_placement({0: 0, 1: 1, 2: 1})
            return tiered

        addresses = np.array([0, 100, 4096, 8191, 8200, 100], dtype=np.int64)
        scalar = fresh()
        for address in addresses.tolist():
            scalar.record_access(int(address), 42.0)
        batched = fresh()
        batched.record_accesses(addresses, 42.0)
        for page_id in (0, 1, 2):
            assert scalar.page(page_id).access_count == batched.page(page_id).access_count
            assert scalar.page(page_id).last_access_ns == batched.page(page_id).last_access_ns
        assert scalar.node_access_counts() == batched.node_access_counts()
        for node_id in (0, 1):
            assert (
                scalar.node_access_tracker(node_id).as_dict()
                == batched.node_access_tracker(node_id).as_dict()
            )

    def test_node_id_table_tracks_generation(self):
        tiered = TieredMemorySystem(
            [
                MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 38.4),
                MemoryNode(1, MemoryTier.CXL, 1 << 20, 190.0, 25.6),
            ]
        )
        tiered.install_placement({0: 0, 1: 1})
        table = tiered.node_id_table()
        assert table.tolist() == [0, 1]
        generation = tiered.generation
        tiered.migrate_page(0, 1)
        assert tiered.generation > generation
        assert tiered.node_id_table().tolist() == [1, 1]
        with pytest.raises(KeyError):
            tiered.node_ids_of_pages(np.array([7]))

    def test_placement_arrays(self):
        nodes = [
            MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 38.4),
            MemoryNode(1, MemoryTier.CXL, 1 << 20, 190.0, 25.6),
            MemoryNode(2, MemoryTier.CXL, 1 << 20, 190.0, 25.6),
        ]
        is_local, device = placement_arrays(nodes)
        assert is_local.tolist() == [True, False, False]
        assert device.tolist() == [-1, 0, 1]

    def test_node_serve_batch_matches_scalar(self):
        scalar_node = MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 38.4)
        batch_node = MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 << 20, 90.0, 38.4)
        starts = [0.0, 0.5, 10.0, 10.0, 3.0]
        expected = [scalar_node.serve(s, bytes_requested=128) for s in starts]
        got = batch_node.serve_batch(starts, bytes_requested=128)
        assert got.tolist() == expected
        assert batch_node.busy_until_ns == scalar_node.busy_until_ns
        assert batch_node.access_count == scalar_node.access_count

    def test_access_tracker_record_many(self):
        scalar_tracker = AccessTracker()
        bulk_tracker = AccessTracker()
        keys = [3, 1, 3, 2, 1, 3]
        for key in keys:
            scalar_tracker.record(key)
        bulk_tracker.record_many(keys)
        assert scalar_tracker.as_dict() == bulk_tracker.as_dict()
        assert scalar_tracker.total == bulk_tracker.total
        # Insertion order (the hottest/coldest tie-breaker) is preserved too.
        assert list(scalar_tracker.keys()) == list(bulk_tracker.keys())
