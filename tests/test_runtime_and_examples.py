"""Tests for the user-facing runtime API and the example scripts."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.pifs.runtime import PIFSRuntime

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestRuntimeAllocation:
    def test_allocate_from_weights(self):
        runtime = PIFSRuntime()
        weights = np.random.default_rng(0).standard_normal((64, 16)).astype(np.float32)
        handle = runtime.allocate_embedding_table(weights)
        np.testing.assert_array_equal(runtime.table(handle).weights, weights)

    def test_allocate_by_shape(self):
        runtime = PIFSRuntime()
        handle = runtime.allocate_embedding_table(num_embeddings=128, embedding_dim=32)
        assert runtime.table(handle).num_embeddings == 128
        assert runtime.num_tables == 1

    def test_missing_shape_rejected(self):
        with pytest.raises(ValueError):
            PIFSRuntime().allocate_embedding_table()

    def test_dim_mismatch_rejected(self):
        runtime = PIFSRuntime()
        runtime.allocate_embedding_table(num_embeddings=10, embedding_dim=16)
        with pytest.raises(ValueError):
            runtime.allocate_embedding_table(num_embeddings=10, embedding_dim=32)

    def test_bad_weight_shape(self):
        with pytest.raises(ValueError):
            PIFSRuntime().allocate_embedding_table(np.zeros(10, dtype=np.float32))


class TestRuntimeSLS:
    @pytest.fixture(scope="class")
    def runtime(self):
        runtime = PIFSRuntime()
        rng = np.random.default_rng(1)
        for _ in range(2):
            runtime.allocate_embedding_table(
                rng.standard_normal((256, 32)).astype(np.float32)
            )
        return runtime

    def test_single_table_sls_matches_numpy(self, runtime):
        indices = [3, 5, 7, 11, 13]
        offsets = [0, 2]
        result = runtime.sls(0, indices, offsets)
        table = runtime.table(0).weights
        np.testing.assert_allclose(result.values[0, 0], table[[3, 5]].sum(axis=0), rtol=1e-5)
        np.testing.assert_allclose(result.values[1, 0], table[[7, 11, 13]].sum(axis=0), rtol=1e-5)

    def test_sls_returns_simulation(self, runtime):
        result = runtime.sls(0, [1, 2, 3, 4], [0, 2])
        assert result.latency_ns > 0
        assert result.sim.lookups == 4
        assert result.sim.system == "PIFS-Rec"

    def test_multi_table_shape(self, runtime):
        result = runtime.sls_multi([0, 1], [[1, 2], [3, 4]], [[0, 1], [0, 1]])
        assert result.values.shape == (2, 2, 32)

    def test_mismatched_arguments(self, runtime):
        with pytest.raises(ValueError):
            runtime.sls_multi([0, 1], [[1]], [[0]])

    def test_empty_handles(self):
        with pytest.raises(ValueError):
            PIFSRuntime().sls_multi([], [], [])


class TestExamples:
    @pytest.mark.parametrize(
        "script", ["quickstart.py", "dlrm_inference.py", "page_management_tuning.py"]
    )
    def test_example_runs(self, script, capsys, monkeypatch):
        path = EXAMPLES_DIR / script
        assert path.exists()
        monkeypatch.setattr(sys, "argv", [str(path)])
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out.strip()) > 0
