"""Tests for the page-management policies (repro.pagemgmt)."""

import pytest

from repro.config import GIB, PAGE_SIZE_BYTES
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.migration import MigrationCostModel
from repro.pagemgmt.regions import HostRegions
from repro.pagemgmt.spreading import SpreadingPolicy


def build_tiered(num_cxl=4, pages_per_node=16):
    nodes = [MemoryNode(0, MemoryTier.LOCAL_DRAM, 1 * GIB, 90.0, 400.0)]
    nodes += [MemoryNode(1 + i, MemoryTier.CXL, 1 * GIB, 190.0, 25.0) for i in range(num_cxl)]
    tiered = TieredMemorySystem(nodes)
    placement = {}
    page = 0
    for node in nodes:
        for _ in range(pages_per_node):
            placement[page] = node.node_id
            page += 1
    tiered.install_placement(placement)
    return tiered


class TestHostRegions:
    def test_claim_and_release(self):
        claims = {}
        regions = HostRegions(host_id=0, global_claims=claims)
        assert regions.claim(5)
        assert regions.owns(5)
        regions.release(5)
        assert not regions.owns(5)
        assert 5 not in claims

    def test_claim_conflict_between_hosts(self):
        claims = {}
        host0 = HostRegions(0, global_claims=claims)
        host1 = HostRegions(1, global_claims=claims)
        assert host0.claim(7)
        assert not host1.claim(7)
        assert host1.num_private_pages == 0


class TestGlobalHotness:
    def test_promotes_hot_cxl_pages(self):
        tiered = build_tiered()
        hot_cxl_page = 20  # lives on a CXL node
        for _ in range(50):
            tiered.record_access(hot_cxl_page * PAGE_SIZE_BYTES)
        policy = GlobalHotnessPolicy(cold_age_threshold=0.16, max_swaps_per_epoch=4)
        outcome = policy.run_epoch(tiered)
        assert outcome.promotions >= 1
        assert tiered.node_of_page(hot_cxl_page).tier is MemoryTier.LOCAL_DRAM
        assert outcome.cost_ns > 0

    def test_no_swap_when_local_already_hot(self):
        tiered = build_tiered()
        for page in range(4):  # local pages
            for _ in range(50):
                tiered.record_access(page * PAGE_SIZE_BYTES)
        policy = GlobalHotnessPolicy()
        outcome = policy.run_epoch(tiered)
        assert outcome.promotions == 0

    def test_higher_threshold_means_fewer_swaps(self):
        def run(threshold):
            tiered = build_tiered()
            for page in range(16, 24):
                for _ in range(page):
                    tiered.record_access(page * PAGE_SIZE_BYTES)
            for page in range(4):
                for _ in range(10):
                    tiered.record_access(page * PAGE_SIZE_BYTES)
            policy = GlobalHotnessPolicy(cold_age_threshold=threshold, max_swaps_per_epoch=8)
            return policy.run_epoch(tiered).promotions

        assert run(0.02) >= run(0.9)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GlobalHotnessPolicy(cold_age_threshold=1.5)


class TestSpreading:
    def test_warm_node_detection(self):
        tiered = build_tiered(num_cxl=4)
        # Hammer node 1's pages only.
        for page in range(16, 32):
            for _ in range(20):
                tiered.record_access(page * PAGE_SIZE_BYTES)
        for page in range(32, 80):
            tiered.record_access(page * PAGE_SIZE_BYTES)
        policy = SpreadingPolicy(migrate_threshold=0.35)
        warm = policy.find_warm_nodes(tiered)
        assert warm == [1]

    def test_rebalance_moves_pages_off_warm_node(self):
        tiered = build_tiered(num_cxl=4)
        for page in range(16, 32):
            for _ in range(20):
                tiered.record_access(page * PAGE_SIZE_BYTES)
        for page in range(32, 80):
            tiered.record_access(page * PAGE_SIZE_BYTES)
        policy = SpreadingPolicy(migrate_threshold=0.35, max_migrations_per_epoch=4)
        outcome = policy.rebalance(tiered)
        assert outcome.migrations >= 1
        assert outcome.cost_ns > 0
        assert 1 in outcome.warm_nodes

    def test_no_migration_when_balanced(self):
        tiered = build_tiered(num_cxl=4)
        for page in range(16, 80):
            tiered.record_access(page * PAGE_SIZE_BYTES)
        outcome = SpreadingPolicy().rebalance(tiered)
        assert outcome.migrations == 0

    def test_higher_threshold_triggers_more_easily(self):
        low = SpreadingPolicy(migrate_threshold=0.10)
        high = SpreadingPolicy(migrate_threshold=0.50)
        assert high.warm_trigger_ratio() < low.warm_trigger_ratio()

    def test_single_cxl_node_never_warm(self):
        tiered = build_tiered(num_cxl=1)
        for page in range(16, 32):
            tiered.record_access(page * PAGE_SIZE_BYTES)
        assert SpreadingPolicy().find_warm_nodes(tiered) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SpreadingPolicy(migrate_threshold=0.0)


class TestMigrationCostModel:
    def test_cacheline_block_cheaper(self):
        model = MigrationCostModel()
        assert model.migration_cost_ns("cacheline_block") < model.migration_cost_ns("page_block")

    def test_blocked_rows(self):
        model = MigrationCostModel()
        assert model.blocked_rows(64, "page_block") == 64
        assert model.blocked_rows(64, "cacheline_block") == 1
        assert model.blocked_rows(256, "cacheline_block") == 1

    def test_overhead_ratio_exceeds_one(self):
        model = MigrationCostModel()
        ratio = model.overhead_ratio(row_bytes=64, access_probability=0.1)
        assert ratio > 3.0  # the paper reports up to 5.1x

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            MigrationCostModel().migration_cost_ns("warp")

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            MigrationCostModel().query_visible_overhead_ns(64, "page_block", access_probability=2.0)
