"""Cross-engine differential test harness.

One assertion shape pins the repository's load-bearing guarantee: every
engine tier ({scalar, vector, packet}), every workload residency mode
({eager, streaming}) and every observability mode ({recording off, on})
must produce the *same simulation* — bit-identical SimResult counters,
latency records, backend/memory state, and (within an engine) NetStats.

:func:`assert_run_identical` / :func:`assert_serve_identical` run every
requested ``(engine, streaming, observe)`` variant of one spec and check:

* **within an engine**: all variants are fully identical, including the
  packet tier's ``net`` report;
* **across engines**: identical after stripping ``net`` (only the packet
  tier produces one — its *presence* is the only allowed difference).

A spec is either an :class:`~repro.api.session.RunSpec` (the facade's
picklable run description — scenarios compile to one) or a plain
:class:`RunCase` (registered system name + machine config + seeded
workload recipe) for fixture-level tests that bypass the facade.

Both functions return the per-engine fingerprints so callers can make
additional engine-specific assertions (e.g. that the packet tier counted
packets and saw no congestion) without re-running anything.
"""

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.api.registry import create_system
from repro.api.session import RunSpec
from repro.api.session import build_system as _build_spec_system
from repro.api.session import build_workload as _build_spec_workload
from repro.config import SystemConfig, WorkloadConfig
from repro.obs.recorder import TraceRecorder
from repro.serve.server import ServeConfig, serve
from repro.sls.engine import ENGINES
from repro.traces.workload import build_workload

__all__ = [
    "ENGINES",
    "RunCase",
    "assert_fleet_identical",
    "assert_run_identical",
    "assert_serve_identical",
    "backend_fingerprint",
    "record_tuples",
    "run_fingerprint",
    "serve_fingerprint",
    "sim_fingerprint",
]


@dataclass(frozen=True)
class RunCase:
    """A differential case outside the spec facade.

    ``workload`` is the seeded recipe, not a built workload object — the
    harness builds the eager and streaming twins from it, which is exactly
    the equivalence under test.
    """

    system: str
    config: SystemConfig
    workload: WorkloadConfig
    num_hosts: int = 1


def _build(spec, engine: str, streaming: bool):
    """(system, workload) for one variant of the spec."""
    if isinstance(spec, RunCase):
        system = create_system(spec.system, spec.config).set_engine(engine)
        workload = build_workload(
            spec.workload, num_hosts=spec.num_hosts, streaming=streaming
        )
        return system, workload
    if isinstance(spec, RunSpec):
        variant = replace(spec, engine=engine, stream=streaming)
        return _build_spec_system(variant), _build_spec_workload(variant)
    raise TypeError(
        f"expected a RunSpec or harness.RunCase, got {type(spec).__name__}"
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
def backend_fingerprint(system) -> dict:
    """Observable backend/memory state after a session (for exact equality)."""
    backends = system.backends
    state = {
        "devices": [
            (device.reads, device.writes, device.link.bytes_transferred,
             device.link.transfers, device.link.busy_until_ns,
             device.link.total_queue_delay_ns)
            for device in backends.devices
        ],
        "device_dram": [
            (device.dram.controller.requests,
             device.dram.controller.average_latency_ns(),
             device.dram.controller.row_buffer_hit_rate(),
             device.dram.controller.last_finish_ns)
            for device in backends.devices
        ],
        "local_dram": [
            (dram.controller.requests, dram.controller.average_latency_ns(),
             dram.controller.row_buffer_hit_rate(), dram.controller.last_finish_ns)
            for dram in backends.local_dram_per_host
        ],
        "switch_forwarded": [switch.forwarded_requests for switch in backends.switches],
        "ports": sorted(
            (key, port.link.bytes_transferred, port.link.transfers,
             port.link.busy_until_ns, port.link.total_queue_delay_ns)
            for key, port in backends.host_ports.items()
        ),
        "pages": [
            (page.page_id, page.node_id, page.access_count, page.last_access_ns)
            for page in system.tiered.pages()
        ],
        "node_access": {
            node.node_id: system.tiered.node_access_tracker(node.node_id).as_dict()
            for node in system.tiered.nodes()
        },
    }
    from repro.pifs.switch import PIFSSwitch

    for switch in backends.switches:
        if isinstance(switch, PIFSSwitch):
            stats = switch.process_core.stats
            state.setdefault("pifs", []).append(
                (switch.buffer.hits, switch.buffer.misses, switch.buffer.evictions,
                 switch.buffer.occupancy, sorted(switch.buffer._entries),
                 stats.decoded_instructions, stats.repacked_instructions,
                 stats.configured_sumtags, stats.completed_sumtags,
                 switch.process_core.accumulator.stats.elements,
                 switch.process_core.accumulator.stats.busy_cycles,
                 switch._next_sumtag,
                 sorted(switch.fm_extension.io_access_counters.items()))
            )
    return state


def sim_fingerprint(result) -> Dict[str, Any]:
    """A SimResult as ``{"sim": <dict without net>, "net": <net or None>}``."""
    data = result.to_dict()
    return {"net": data.pop("net", None), "sim": data}


def run_fingerprint(system, result) -> Dict[str, Any]:
    """Closed-loop fingerprint: SimResult + NetStats + backend state."""
    fingerprint = sim_fingerprint(result)
    fingerprint["backend"] = backend_fingerprint(system)
    return fingerprint


def record_tuples(records) -> list:
    """Latency records as plain tuples (exact equality, order included)."""
    return [
        (r.request_id, r.host_id, r.lane, r.arrival_ns,
         r.dispatch_ns, r.start_ns, r.complete_ns, r.lookups)
        for r in (records or ())
    ]


def serve_fingerprint(result) -> Dict[str, Any]:
    """Open-loop fingerprint: ServeResult dict + NetStats + latency records."""
    data = result.to_dict()
    sim = data.get("sim")
    net = sim.pop("net", None) if isinstance(sim, dict) else None
    return {"net": net, "serve": data, "records": record_tuples(result.records)}


def _strip_net(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in fingerprint.items() if key != "net"}


# ---------------------------------------------------------------------------
# The differential assertions
# ---------------------------------------------------------------------------
def _attach_recorder(system) -> TraceRecorder:
    recorder = TraceRecorder()
    set_recorder = getattr(system, "set_recorder", None)
    assert set_recorder is not None, "system does not support observability"
    set_recorder(recorder)
    return recorder


def _check_vector_context(system, engine: str, streaming: bool, serving: bool) -> None:
    """The vector engine must actually have engaged (not silently fallen back)."""
    if engine != "vector" or not getattr(system, "supports_vector_engine", True):
        return
    if serving and streaming:
        # Streaming serve dispatches on the scalar oracle path by design
        # (results are pinned identical to the vector path regardless).
        return
    assert system._vector is not None, "vector context was not built"


def _sweep_variants(spec, *, engines, streaming, observe, execute) -> Dict[str, Any]:
    """Shared driver: run every variant, compare within and across engines."""
    per_engine: Dict[str, Any] = {}
    reference: Optional[Tuple[Dict[str, Any], str]] = None
    for engine in engines:
        engine_reference: Optional[Tuple[Dict[str, Any], str]] = None
        for stream in streaming:
            for observed in observe:
                label = f"engine={engine}, streaming={stream}, observe={observed}"
                fingerprint = execute(engine, stream, observed)
                if engine_reference is None:
                    engine_reference = (fingerprint, label)
                else:
                    assert fingerprint == engine_reference[0], (
                        f"{label} diverged from {engine_reference[1]}"
                    )
        assert engine_reference is not None, "empty streaming/observe axes"
        per_engine[engine] = engine_reference[0]
        stripped = _strip_net(engine_reference[0])
        if reference is None:
            reference = (stripped, engine_reference[1])
        else:
            assert stripped == reference[0], (
                f"{engine_reference[1]} diverged from {reference[1]}"
            )
    return per_engine


def assert_run_identical(
    spec,
    *,
    engines: Sequence[str] = ENGINES,
    streaming: Sequence[bool] = (False, True),
    observe: Sequence[bool] = (False,),
) -> Dict[str, Any]:
    """Pin closed-loop bit-identity across every requested variant.

    Runs the spec once per ``(engine, streaming, observe)`` combination
    and asserts the fingerprints (SimResult, NetStats, backend state)
    agree — fully within an engine, net-stripped across engines.  Returns
    ``{engine: fingerprint}`` for follow-up engine-specific assertions.
    """

    def execute(engine: str, stream: bool, observed: bool) -> Dict[str, Any]:
        system, workload = _build(spec, engine, stream)
        recorder = _attach_recorder(system) if observed else None
        result = system.run(workload)
        _check_vector_context(system, engine, stream, serving=False)
        if recorder is not None:
            assert len(recorder) > 0, "recording captured no events"
        return run_fingerprint(system, result)

    return _sweep_variants(
        spec, engines=engines, streaming=streaming, observe=observe, execute=execute
    )


def assert_fleet_identical(
    spec,
    *,
    shard_counts: Sequence[int] = (1, 3),
    engines: Sequence[str] = ENGINES,
    streaming: Sequence[bool] = (False, True),
    observe: Sequence[bool] = (False,),
    serve_config: Optional[ServeConfig] = None,
    workers: int = 2,
) -> Dict[str, Any]:
    """Pin the fleet layer's two oracles (the fleet analogue of the above).

    1. **1-shard fleet ≡ single system.**  For every ``(engine,
       streaming, observe)`` variant, a 1-shard fleet of the spec must be
       bit-identical to the plain single-system run: SimResult counters,
       NetStats, the shard system's backend/memory state — and, when
       ``serve_config`` is given, the full ServeResult including the
       per-request latency records.
    2. **Worker-count independence.**  For every count in
       ``shard_counts``, serial (in-process) and pooled execution of the
       same fleet spec must produce identical result dicts.

    Fleet execution goes through the spec facade, so ``spec`` must be a
    :class:`~repro.api.session.RunSpec`; a :class:`RunCase` raises
    ``TypeError``.  Returns the per-engine single-run fingerprints.
    """
    if not isinstance(spec, RunSpec):
        raise TypeError(
            "assert_fleet_identical needs a RunSpec (fleets compile from the "
            f"spec facade), got {type(spec).__name__}"
        )
    from repro.fleet.executor import Fleet

    def one_shard_spec(engine: str, stream: bool) -> RunSpec:
        return replace(
            spec, engine=engine, stream=stream, fleet_shards=1,
            fleet_router=spec.fleet_router, fleet_seed=spec.fleet_seed,
        )

    def execute(engine: str, stream: bool, observed: bool) -> Dict[str, Any]:
        plain = replace(spec, engine=engine, stream=stream, fleet_shards=0)
        label = f"engine={engine}, streaming={stream}, observe={observed}"

        system, workload = _build(plain, engine, stream)
        recorder = _attach_recorder(system) if observed else None
        result = system.run(workload)
        if recorder is not None:
            assert len(recorder) > 0, "recording captured no events"
        single_fp = run_fingerprint(system, result)

        fleet = Fleet(one_shard_spec(engine, stream))
        fleet_recorder = TraceRecorder() if observed else None
        fleet_result = fleet.run(recorder=fleet_recorder)
        assert fleet.systems is not None and len(fleet.systems) == 1
        fleet_fp = run_fingerprint(fleet.systems[0], fleet_result.per_shard[0])
        assert fleet_fp == single_fp, (
            f"1-shard fleet diverged from the single-system run ({label})"
        )
        # The combined aggregate of one shard IS the shard (net included).
        assert fleet_result.combined.to_dict() == result.to_dict(), (
            f"1-shard combined aggregate diverged ({label})"
        )
        if fleet_recorder is not None:
            assert len(fleet_recorder) > 0, "fleet recording captured no events"

        if serve_config is not None:
            serve_system, serve_workload = _build(plain, engine, stream)
            single_serve = serve(serve_system, serve_workload, serve_config)
            fleet_serve = Fleet(one_shard_spec(engine, stream)).serve(serve_config)
            assert fleet_serve.per_shard, "fleet serve returned no shard results"
            assert serve_fingerprint(fleet_serve.per_shard[0]) == serve_fingerprint(
                single_serve
            ), f"1-shard fleet serve diverged from the single-system serve ({label})"
            assert fleet_serve.latency == single_serve.latency, (
                f"fleet-level latency stats diverged ({label})"
            )
        return single_fp

    per_engine = _sweep_variants(
        spec, engines=engines, streaming=streaming, observe=observe, execute=execute
    )

    # Worker-count independence (serial vs pooled) for every shard count,
    # on every engine x streaming variant — shard views leave request-id
    # gaps the vector context must handle, so the pooled/serial sweep must
    # not silently run a single fidelity.  Across engines, the multi-shard
    # combined aggregate must agree once NetStats (packet-tier-only) is
    # stripped — the same within/across-engine contract the single-system
    # oracles pin.
    for shards in shard_counts:
        for stream in streaming:
            reference = None
            for engine in engines:
                fleet_spec = replace(
                    spec, engine=engine, stream=stream, fleet_shards=int(shards)
                )
                label = f"shards={shards}, engine={engine}, streaming={stream}"
                serial = Fleet(fleet_spec).run()
                pooled = Fleet(fleet_spec).run(workers=workers)
                assert serial.to_dict() == pooled.to_dict(), (
                    f"pooled fleet run diverged from serial ({label})"
                )
                combined = dict(serial.combined.to_dict(), net=None)
                if reference is None:
                    reference = (combined, label)
                else:
                    assert combined == reference[0], (
                        f"fleet combined aggregate: {label} diverged from "
                        f"{reference[1]}"
                    )
                if serve_config is not None:
                    serial_serve = Fleet(fleet_spec).serve(serve_config)
                    pooled_serve = Fleet(fleet_spec).serve(
                        serve_config, workers=workers
                    )
                    assert serial_serve.to_dict() == pooled_serve.to_dict(), (
                        f"pooled fleet serve diverged from serial ({label})"
                    )
    return per_engine


def assert_serve_identical(
    spec,
    config: ServeConfig,
    *,
    engines: Sequence[str] = ENGINES,
    streaming: Sequence[bool] = (False, True),
    observe: Sequence[bool] = (False,),
) -> Dict[str, Any]:
    """Pin open-loop (serving) bit-identity across every requested variant.

    Like :func:`assert_run_identical` but drives the system through the
    :mod:`repro.serve` loop; the fingerprint carries the full ServeResult
    dict, the NetStats, and the per-request latency records.
    """

    def execute(engine: str, stream: bool, observed: bool) -> Dict[str, Any]:
        system, workload = _build(spec, engine, stream)
        recorder = _attach_recorder(system) if observed else None
        result = serve(system, workload, config)
        _check_vector_context(system, engine, stream, serving=True)
        if recorder is not None:
            assert len(recorder) > 0, "recording captured no events"
        return serve_fingerprint(result)

    return _sweep_variants(
        spec, engines=engines, streaming=streaming, observe=observe, execute=execute
    )
