"""Shared fixtures for the test suite."""

from dataclasses import replace

import pytest

pytest.register_assert_rewrite("harness")

from repro.config import DEFAULT_SYSTEM, RMC1, WorkloadConfig, scaled_model
from repro.traces.workload import build_workload


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running regression (big traces, memory budgets)"
    )


@pytest.fixture(scope="session")
def tiny_model():
    """A laptop-scale RMC1: 512 rows x 64 dims x 4 tables."""
    return replace(scaled_model(RMC1, 512 / RMC1.num_embeddings), num_tables=4)


@pytest.fixture(scope="session")
def tiny_workload_config(tiny_model):
    """The seeded recipe behind ``tiny_workload`` (for the diff harness)."""
    return WorkloadConfig(
        model=tiny_model, batch_size=4, num_batches=2, pooling_factor=8, seed=11
    )


@pytest.fixture(scope="session")
def tiny_workload(tiny_workload_config):
    """A small but non-trivial SLS workload (hundreds of lookups)."""
    return build_workload(tiny_workload_config)


@pytest.fixture(scope="session")
def tiny_system(tiny_workload):
    """A system config whose local DRAM holds ~25 % of the tiny workload."""
    page_mgmt = replace(DEFAULT_SYSTEM.page_mgmt, migration_epoch_accesses=128)
    return replace(
        DEFAULT_SYSTEM,
        local_dram_capacity_bytes=max(8192, tiny_workload.address_space.total_bytes // 4),
        num_cxl_devices=4,
        host_threads=4,
        page_mgmt=page_mgmt,
    )
