"""Fleet layer: router properties, exact shard partitions, fleet oracles.

Three layers of guarantees, strongest first:

* **Router properties** (Hypothesis): hash routing is a pure function of
  request content (stable under reordering), power-of-two-choices ties
  break from the seed — never from shard index or enumeration order —
  and table-affinity never routes a request off its shard's table range.
* **Partition exactness** (Hypothesis): for every policy, the union of
  all shard views equals the eager workload — same requests, same global
  ids, no dupes, no gaps — including fleets with more shards than tables
  (empty shards) and streaming bases of any window size.
* **Fleet oracles** (differential harness): a 1-shard fleet is
  bit-identical to the plain single-system run across the full
  ``(engine, streaming, observe)`` grid, and N-shard results are
  independent of the worker pool size.
"""

import pickle
from itertools import chain
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import assert_fleet_identical
from repro.api.session import Simulation, spec_key
from repro.api.sweep import Sweep
from repro.fleet import (
    Fleet,
    FleetResult,
    FleetServeResult,
    HashRouter,
    PowerOfTwoRouter,
    ROUTER_POLICIES,
    TableAffinityRouter,
    TablePartition,
    make_router,
    run_fleet,
    shard_views,
)
from repro.fleet.router import _mix64, _request_key
from repro.fleet.shard import ShardWorkload
from repro.serve.server import ServeConfig
from repro.traces.files import save_trace, workload_from_trace
from repro.traces.stream import MemoryBatchStream
from repro.traces.workload import StreamingWorkload, workload_from_batches
from test_stream import MODEL, assert_requests_equal, random_batches

ROUTERS = [HashRouter(seed=11), PowerOfTwoRouter(seed=11), TableAffinityRouter()]


def _quick():
    return Simulation().quick().num_batches(2)


# ---------------------------------------------------------------------------
# TablePartition
# ---------------------------------------------------------------------------
@given(
    num_tables=st.integers(min_value=0, max_value=64),
    num_shards=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=80, deadline=None)
def test_table_partition_is_exact_and_balanced(num_tables, num_shards):
    partition = TablePartition(num_tables, num_shards)
    ranges = list(partition.ranges())
    # Contiguous cover of [0, num_tables) in shard order.
    cursor = 0
    for lo, hi in ranges:
        assert lo == cursor and hi >= lo
        cursor = hi
    assert cursor == num_tables
    # Balanced within one table, and shard_of_table inverts range_of.
    sizes = [hi - lo for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1
    for table in range(num_tables):
        shard = partition.shard_of_table(table)
        lo, hi = ranges[shard]
        assert lo <= table < hi


# ---------------------------------------------------------------------------
# Router properties
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    router_seed=st.integers(min_value=0, max_value=2**16),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
    num_shards=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=40, deadline=None)
def test_hash_routing_is_stable_under_reordering(
    seed, router_seed, shuffle_seed, num_shards
):
    """Hash routes are a pure function of request content: any frontend
    replica, any arrival order, same shard."""
    batches = random_batches(seed, 3, 2, 4, 3)
    workload = workload_from_batches(batches, MODEL)
    router = HashRouter(seed=router_seed)
    bound = router.bind(num_shards, MODEL.num_tables)
    assignment = {id(request): bound.route(request) for request in workload.requests}
    shuffled = list(workload.requests)
    Random(shuffle_seed).shuffle(shuffled)
    rebound = router.bind(num_shards, MODEL.num_tables)
    for request in shuffled:
        assert rebound.route(request) == assignment[id(request)]


def test_power_of_two_tie_breaks_come_from_the_seed():
    """Ties (equal shard loads) resolve by a seeded coin, never by shard
    index or dict/enumeration order — and identically on replay."""
    workload = _quick().build_workload()
    requests = list(workload.requests)
    num_shards = 4

    def assignments(seed):
        bound = PowerOfTwoRouter(seed=seed).bind(num_shards, MODEL.num_tables)
        return [bound.route(request) for request in requests]

    # Deterministic replay under one seed.
    assert assignments(7) == assignments(7)
    # The seed matters: some seed pair must assign differently.
    distinct = {tuple(assignments(seed)) for seed in range(6)}
    assert len(distinct) > 1, "router ignored its seed"
    # The very first request always ties (all loads zero): across seeds the
    # coin must pick *both* candidates sometimes — picking min(first, second)
    # or always-first would be index/enumeration order, not the seed.
    first_request = requests[0]
    key = _request_key(first_request)
    picked_first, picked_second = False, False
    for seed in range(32):
        first = _mix64(seed, 1, *key) % num_shards
        second = _mix64(seed, 2, *key) % num_shards
        if first == second:
            continue
        bound = PowerOfTwoRouter(seed=seed).bind(num_shards, MODEL.num_tables)
        choice = bound.route(first_request)
        assert choice in (first, second)
        picked_first = picked_first or choice == first
        picked_second = picked_second or choice == second
    assert picked_first and picked_second, "tie-break never consulted the coin"


def test_power_of_two_prefers_the_lighter_shard():
    workload = _quick().build_workload()
    bound = PowerOfTwoRouter(seed=3).bind(4, MODEL.num_tables)
    for request in workload.requests:
        key = _request_key(request)
        first = _mix64(3, 1, *key) % 4
        second = _mix64(3, 2, *key) % 4
        lighter = None
        if bound.loads[first] != bound.loads[second]:
            lighter = first if bound.loads[first] < bound.loads[second] else second
        choice = bound.route(request)
        if lighter is not None:
            assert choice == lighter


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_shards=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=30, deadline=None)
def test_table_affinity_never_leaves_the_shard_range(seed, num_shards):
    batches = random_batches(seed, 3, 3, 4, 3)
    workload = workload_from_batches(batches, MODEL)
    streaming = StreamingWorkload(MemoryBatchStream(batches), MODEL)
    for view in shard_views(streaming, TableAffinityRouter(), num_shards):
        lo, hi = view.table_range
        for request in view:
            assert lo <= request.table < hi


# ---------------------------------------------------------------------------
# Partition exactness: union of shards == eager workload
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_batches=st.integers(min_value=1, max_value=5),
    num_tables=st.integers(min_value=1, max_value=3),
    batch_size=st.integers(min_value=1, max_value=4),
    max_pool=st.integers(min_value=0, max_value=3),
    num_shards=st.integers(min_value=1, max_value=6),
    window_batches=st.integers(min_value=1, max_value=7),
    router_index=st.integers(min_value=0, max_value=len(ROUTERS) - 1),
)
@settings(max_examples=60, deadline=None)
def test_shard_views_partition_the_trace_exactly(
    seed, num_batches, num_tables, batch_size, max_pool,
    num_shards, window_batches, router_index,
):
    """No dupes, no gaps: every policy, empty bags and empty shards
    included, streaming and eager bases alike."""
    router = ROUTERS[router_index]
    batches = random_batches(seed, num_batches, num_tables, batch_size, max_pool)
    eager = workload_from_batches(batches, MODEL)
    streaming = StreamingWorkload(
        MemoryBatchStream(batches), MODEL, window_batches=window_batches
    )
    for base in (eager, streaming):
        views = shard_views(base, router, num_shards)
        union = list(chain.from_iterable(views))
        ids = [request.request_id for request in union]
        assert len(ids) == len(set(ids)), "a request landed on two shards"
        union.sort(key=lambda request: request.request_id)
        assert_requests_equal(eager.requests, union)
        # Aggregates partition too.
        assert sum(len(view) for view in views) == len(eager.requests)
        assert sum(view.total_lookups for view in views) == eager.total_lookups


def test_one_shard_view_is_the_whole_workload():
    batches = random_batches(9, 3, 2, 4, 3)
    eager = workload_from_batches(batches, MODEL)
    streaming = StreamingWorkload(MemoryBatchStream(batches), MODEL, window_batches=2)
    for router in ROUTERS:
        view = streaming.shard_view(router, 0, 1)
        assert_requests_equal(eager.requests, iter(view))
        assert len(view) == len(eager.requests)


def test_shard_view_validation():
    streaming = StreamingWorkload(MemoryBatchStream(random_batches(1, 2, 2, 3, 2)), MODEL)
    with pytest.raises(ValueError):
        ShardWorkload(streaming, HashRouter(), shard=2, num_shards=2)
    with pytest.raises(ValueError):
        ShardWorkload(streaming, HashRouter(), shard=0, num_shards=0)
    with pytest.raises(TypeError):
        ShardWorkload(streaming, "hash", shard=0, num_shards=2)
    view = ShardWorkload(streaming, HashRouter(), shard=0, num_shards=2)
    with pytest.raises(AttributeError):
        view.requests  # streaming views hold no materialized list


# ---------------------------------------------------------------------------
# Shard views ship as small handles (the PR 8 leftover)
# ---------------------------------------------------------------------------
def test_streaming_shard_view_pickles_as_a_handle(tmp_path):
    """Fleet workers receive path + range + router, never trace bytes."""
    batches = random_batches(5, 6, 3, 4, 3)
    path = save_trace(batches, tmp_path / "trace.npz")
    streaming = workload_from_trace(path, MODEL, streaming=True)
    for router in ROUTERS:
        for shard in range(3):
            view = streaming.shard_view(router, shard, 3)
            list(view)  # populate the scan caches, which must NOT ride along
            view._scanned()
            payload = pickle.dumps(view)
            assert len(payload) < 4096, (
                f"{router.policy} shard view pickled to {len(payload)} bytes"
            )
            clone = pickle.loads(payload)
            assert clone.base.stream.path == streaming.stream.path
            assert_requests_equal(iter(view), iter(clone))


def test_eager_shard_view_pickle_drops_the_filtered_list():
    eager = workload_from_batches(random_batches(2, 3, 2, 4, 3), MODEL)
    view = ShardWorkload(eager, HashRouter(seed=1), 0, 2)
    kept = list(view.requests)
    clone = pickle.loads(pickle.dumps(view))
    assert clone._requests is None and clone._scan is None
    assert_requests_equal(kept, clone.requests)


# ---------------------------------------------------------------------------
# The fleet oracles (differential harness)
# ---------------------------------------------------------------------------
def test_fleet_identical_across_the_grid():
    """1-shard fleet ≡ single system over (engine, streaming, observe);
    N-shard results independent of worker count; serve included."""
    spec = _quick().fleet(3, router="hash", seed=5).spec()
    assert_fleet_identical(
        spec,
        shard_counts=(1, 3),
        observe=(False, True),
        serve_config=ServeConfig(qps=2e5, sla_ns=5_000_000.0),
    )


def test_fleet_identical_power_of_two_streaming():
    spec = _quick().stream().fleet(4, router="power-of-two-choices", seed=2).spec()
    assert_fleet_identical(
        spec, shard_counts=(4,), engines=("vector",), streaming=(True,)
    )


# ---------------------------------------------------------------------------
# Facade integration: Simulation / Sweep / scenario / JSON
# ---------------------------------------------------------------------------
def test_simulation_fleet_combines_counters():
    single = _quick().run(cache=False)
    result = _quick().fleet(4, router="table-affinity").run(cache=False)
    assert result.params["shards"] == 4
    assert result.params["router"] == "table-affinity"
    # Partitioned replay conserves work: same requests and lookups, and
    # the fleet completion time (slowest shard) can only improve.
    assert result.sim.requests == single.sim.requests
    assert result.sim.lookups == single.sim.lookups
    assert result.sim.total_ns <= single.sim.total_ns


def test_fleet_spec_key_tracks_fleet_fields():
    base = _quick()
    keys = {
        spec_key(base.clone().spec()),
        spec_key(base.clone().fleet(2).spec()),
        spec_key(base.clone().fleet(2, router="hash").spec()),
        spec_key(base.clone().fleet(2, router="hash", seed=9).spec()),
    }
    assert len(keys) == 4


def test_fleet_setter_validation():
    with pytest.raises(ValueError):
        Simulation().fleet(-1)
    with pytest.raises(ValueError):
        Simulation().fleet(2, router="round-robin")
    with pytest.raises(ValueError):
        Simulation().router("nope")
    with pytest.raises(ValueError):
        make_router("nope")
    assert Simulation(shards=2, router="hash").spec().fleet_router == "hash"


def test_sweep_over_shards_and_router():
    grid = Sweep(
        {"shards": [1, 2], "router": list(ROUTER_POLICIES)}, base=_quick()
    ).run(cache=False)
    assert len(grid) == 2 * len(ROUTER_POLICIES)
    lookups = {result.sim.lookups for result in grid}
    assert len(lookups) == 1, "routing policies must conserve total work"
    coords = {(r.params["shards"], r.params["router"]) for r in grid}
    assert coords == {(s, p) for s in (1, 2) for p in ROUTER_POLICIES}


def test_fleet_baseline_scenario():
    from repro.scenarios.registry import scenario

    entry = scenario("fleet-baseline")
    assert entry.shards == 4 and entry.router == "table-affinity"
    assert "4shards/table-affinity" in entry.dimensions()
    assert "fleet 4 shards" in entry.parameters()
    clone = type(entry).from_dict(entry.to_dict())
    assert clone == entry
    result = entry.run(quick=True, cache=False)
    assert result.params["shards"] == 4
    # Scenario application resets fleet fields from a previous scenario.
    sim = _quick().fleet(8, router="hash").scenario("paper-baseline")
    assert sim.spec().fleet_shards == 0


def test_fleet_result_json_round_trip():
    fleet = run_fleet(_quick().fleet(2, router="hash").spec())
    clone = FleetResult.from_json(fleet.to_json())
    assert clone.to_dict() == fleet.to_dict()
    assert clone.goodput_lookups_per_us == fleet.goodput_lookups_per_us
    assert len(fleet.shard_breakdown()) == 2


def test_fleet_serve_round_trip_and_goodput():
    config = ServeConfig(qps=2e5, sla_ns=5_000_000.0)
    fleet = Fleet(_quick().fleet(2).spec())
    result = fleet.serve(config)
    assert result.requests == result.latency.count
    assert result.sla_attainment == pytest.approx(1.0)
    assert result.goodput_qps == pytest.approx(result.achieved_qps)
    assert result.sim is not None and result.sim.latency == result.latency
    clone = FleetServeResult.from_json(result.to_json())
    assert clone.to_dict() == result.to_dict()


def test_fleet_observe_merges_per_shard_spans():
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder()
    result = _quick().fleet(2).observe(recorder).run()
    assert result.obs is not None
    trace = recorder.to_chrome_trace()
    processes = {
        event["args"]["name"]
        for event in trace["traceEvents"]
        if event.get("name") == "process_name"
    }
    assert {"shard-0", "shard-1"} <= processes
